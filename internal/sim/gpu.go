package sim

import (
	"fmt"
	"math"
	"sort"
)

// Config holds the simulated device parameters. DefaultConfig models the
// paper's testbed, an Nvidia A100 (108 SMs, 40 GB), with the host-side cost
// constants the paper measures in §6.9.
type Config struct {
	// SMs is the number of streaming multiprocessors (108 on A100).
	SMs int
	// MemoryBytes is the device memory capacity (40 GB on A100).
	MemoryBytes int64
	// PCIeBytesPerNS is the host<->device transfer bandwidth in bytes per
	// nanosecond (25 GB/s PCIe4 x16 effective ~= 25 bytes/ns).
	PCIeBytesPerNS float64
	// KernelLaunch is the host-side cost of launching one kernel (~3us).
	KernelLaunch Time
	// ContextSwitch is the vacuum period when a client redirects kernel
	// launches from one GPU context to another through MPS (~50us). The
	// vacuum delays that client's kernels only; other device queues keep
	// executing (§6.9).
	ContextSwitch Time
	// SquadSync is the host<->device synchronization cost at a kernel-squad
	// boundary (~20us).
	SquadSync Time
	// ContextMemBytes is the device memory consumed per additional MPS
	// context (~230 MB, §6.9).
	ContextMemBytes int64
	// SlowdownCap bounds the per-kernel contention slowdown ratio. The paper
	// measures a kernel-level slowdown no larger than 2x even against highly
	// memory-intensive co-runners (Fig 9a).
	SlowdownCap float64
	// BWSatOccupancy is the fraction of a kernel's saturation SM count at
	// which it already reaches its full memory-bandwidth demand: memory-
	// bound kernels saturate the bus well below full occupancy. 0 or 1
	// disables the knee (linear scaling).
	BWSatOccupancy float64
	// InterferenceBeta scales the co-residency penalty: kernels whose SM
	// scopes overlap (at least one side launched without an SM-affinity
	// restriction) slow down by 1 + beta x oversubscription when their
	// combined SM demand exceeds capacity — the uncontrolled interleaving
	// the paper attributes to unbounded sharing (Fig 3b, §3.2). Strictly
	// partitioned contexts never pay it, which is what makes controlled
	// spatial sharing attractive.
	InterferenceBeta float64
}

// DefaultConfig returns the A100-calibrated configuration used throughout the
// evaluation.
func DefaultConfig() Config {
	return Config{
		SMs:              108,
		MemoryBytes:      40 << 30,
		PCIeBytesPerNS:   25.0,
		KernelLaunch:     3 * Microsecond,
		ContextSwitch:    50 * Microsecond,
		SquadSync:        20 * Microsecond,
		ContextMemBytes:  230 << 20,
		SlowdownCap:      2.0,
		BWSatOccupancy:   0.5,
		InterferenceBeta: 0.16,
	}
}

// Validate reports an error for inconsistent device parameters.
func (c *Config) Validate() error {
	if c.SMs < 1 {
		return fmt.Errorf("sim: config: SMs must be >= 1, got %d", c.SMs)
	}
	if c.PCIeBytesPerNS <= 0 {
		return fmt.Errorf("sim: config: PCIeBytesPerNS must be positive, got %g", c.PCIeBytesPerNS)
	}
	if c.SlowdownCap < 1 {
		return fmt.Errorf("sim: config: SlowdownCap must be >= 1, got %g", c.SlowdownCap)
	}
	if c.InterferenceBeta < 0 {
		return fmt.Errorf("sim: config: InterferenceBeta must be >= 0, got %g", c.InterferenceBeta)
	}
	return nil
}

// Context is a simulated GPU context. Kernels launched into a context's
// device queues are collectively capped at SMLimit SMs (0 = unrestricted),
// mirroring MPS contexts created with cuCtxCreate_v3 SM affinity. A context
// with Isolated set also receives a private memory-bandwidth slice
// proportional to its SM share, modeling MIG hardware partitions.
type Context struct {
	gpu *GPU
	id  int

	// SMLimit caps the SMs usable by all kernels of this context combined;
	// 0 means no restriction.
	SMLimit int
	// Isolated grants the context a private bandwidth slice (MIG-style);
	// non-isolated contexts contend on the shared bandwidth pool (MPS-style).
	Isolated bool
	// Priority orders hardware dispatch: higher-priority contexts take the
	// SMs they want before lower tiers share the remainder. Equal priorities
	// share fairly, as Volta+ hardware schedulers do (paper footnote 1).
	Priority int

	label string
	owner int // OwnerTag-encoded client slot, 0 = unowned
}

// ID returns the context's device-unique identifier.
func (c *Context) ID() int { return c.id }

// OwnerTag encodes a deploying client's slot ID for ContextOptions.Owner.
// The encoding reserves 0 (the field's zero value) for "unowned", so
// schedulers can tag contexts without a sentinel colliding with client 0.
func OwnerTag(clientID int) int { return clientID + 1 }

// Owner decodes the context's owner tag: the deploying client's slot ID and
// whether the context is owned at all. Invariant checkers use it to attribute
// SM allocations to clients without parsing debug labels.
func (c *Context) Owner() (clientID int, ok bool) {
	if c.owner == 0 {
		return -1, false
	}
	return c.owner - 1, true
}

// SetSMLimit re-restricts the context to limit SMs (0 = unrestricted),
// taking effect immediately for queued and future kernels (a running kernel
// keeps its allocation policy from the next rate recomputation on). This
// models tearing down and re-establishing an MPS context with a different SM
// affinity; callers that want the associated ~50us vacuum charge it
// themselves (e.g. by pausing the queue), as adaptive spatial-sharing
// schedulers like GSLICE do.
func (c *Context) SetSMLimit(limit int) error {
	if limit < 0 || limit > c.gpu.cfg.SMs {
		return fmt.Errorf("sim: context %q: SMLimit %d out of range [0,%d]", c.label, limit, c.gpu.cfg.SMs)
	}
	if limit != c.SMLimit {
		c.SMLimit = limit
		c.gpu.reschedule()
	}
	return nil
}

// Label returns the debug label given at creation.
func (c *Context) Label() string { return c.label }

// launchRecord is a kernel sitting in (or running from) a device queue.
type launchRecord struct {
	k      *Kernel
	onDone func(at Time)
}

// Queue is a device queue (ring buffer in real hardware): kernels in one
// queue execute in FIFO order, one at a time; concurrency happens across
// queues. A queue belongs to exactly one context and inherits its SM limit,
// isolation and priority.
type Queue struct {
	ctx     *Context
	id      int
	pending []launchRecord
	run     *exec // currently executing head, nil if idle
	paused  bool
	label   string
}

// Context returns the owning context.
func (q *Queue) Context() *Context { return q.ctx }

// Len reports the number of kernels in the queue, including the running one.
func (q *Queue) Len() int {
	n := len(q.pending)
	if q.run != nil {
		n++
	}
	return n
}

// Idle reports whether the queue has no running and no pending kernels.
func (q *Queue) Idle() bool { return q.run == nil && len(q.pending) == 0 }

// Label returns the debug label given at creation.
func (q *Queue) Label() string { return q.label }

// Pause stops the queue from dispatching its next pending kernel. A kernel
// already executing is not preempted (GPU kernels are un-preemptable); it
// runs to completion. Used by time-slicing schedulers.
func (q *Queue) Pause() {
	if !q.paused {
		q.paused = true
		q.ctx.gpu.reschedule()
	}
}

// Resume re-enables dispatch from the queue.
func (q *Queue) Resume() {
	if q.paused {
		q.paused = false
		q.ctx.gpu.reschedule()
	}
}

// Paused reports whether the queue is paused.
func (q *Queue) Paused() bool { return q.paused }

// PendingKernel is one launch record removed from a queue before execution.
type PendingKernel struct {
	K      *Kernel
	OnDone func(at Time)
}

// CancelPending drops every pending (not yet executing) kernel from the
// queue and returns the removed records so the caller can settle their
// completion bookkeeping — crash teardown for a departed client. The running
// kernel, if any, is not preempted (GPU kernels are un-preemptable) and
// completes normally. Removal is reported to RemovalTracer subscribers.
func (q *Queue) CancelPending() []PendingKernel {
	if len(q.pending) == 0 {
		return nil
	}
	g := q.ctx.gpu
	out := make([]PendingKernel, len(q.pending))
	var ks []*Kernel
	if len(g.removalTracers) > 0 {
		ks = make([]*Kernel, len(q.pending))
	}
	for i, rec := range q.pending {
		out[i] = PendingKernel{K: rec.k, OnDone: rec.onDone}
		if ks != nil {
			ks[i] = rec.k
		}
	}
	q.pending = q.pending[:0]
	for _, t := range g.removalTracers {
		t.KernelsRemoved(g.eng.Now(), q, ks)
	}
	g.reschedule()
	return out
}

// exec is a kernel in flight.
type exec struct {
	q         *Queue
	rec       launchRecord
	remaining float64 // compute: SM*ns of work left; memcpy: bytes left
	rate      float64 // compute: effective SMs; memcpy: bytes per ns
	alloc     float64 // compute: SMs granted before slowdown (for accounting)
	demand    float64 // compute: SMs wanted under the context cap
	started   Time
	allocIntg float64 // integral of alloc over time, for avg-SM tracing
}

// GPU is the simulated device. Create one per experiment with NewGPU, create
// contexts and queues, and enqueue kernels; the GPU schedules itself on the
// shared Engine. GPU is not safe for concurrent use (the simulation is
// single-threaded).
type GPU struct {
	eng *Engine
	cfg Config

	contexts []*Context
	queues   []*Queue

	completion *Event
	lastAcct   Time

	// accounting
	busySMIntegral float64 // integral of allocated compute SMs over time (SM*ns)
	anyBusyTime    Time    // total time with >= 1 compute kernel running
	lastAnyBusy    bool
	kernelsDone    int64
	memUsed        int64

	tracers        []Tracer
	allocTracers   []AllocationTracer
	enqTracers     []EnqueueTracer
	removalTracers []RemovalTracer
	loadBuf        []QueueLoad
}

// NewGPU creates a device with the given configuration, scheduled on eng.
// It panics if the configuration is invalid (a programming error).
func NewGPU(eng *Engine, cfg Config) *GPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &GPU{eng: eng, cfg: cfg}
}

// Config returns the device configuration.
func (g *GPU) Config() Config { return g.cfg }

// Engine returns the simulation engine driving this device.
func (g *GPU) Engine() *Engine { return g.eng }

// ContextOptions configures NewContext.
type ContextOptions struct {
	// SMLimit caps SM usage (0 = unrestricted).
	SMLimit int
	// Isolated gives the context a private bandwidth slice (MIG-style).
	Isolated bool
	// Priority tiers hardware dispatch (higher first; default 0).
	Priority int
	// Label is a free-form debug label.
	Label string
	// NoMemCharge skips the per-context device-memory charge (used by
	// tests and by schedulers that account for context memory themselves).
	NoMemCharge bool
	// Owner tags the context with the deploying client's slot, encoded with
	// OwnerTag (the zero value means unowned). Invariant checkers rely on the
	// tag to attribute allocations and quotas per client.
	Owner int
}

// NewContext creates a GPU context. Each context consumes ContextMemBytes of
// device memory unless NoMemCharge is set; creation fails if memory is
// exhausted.
func (g *GPU) NewContext(opts ContextOptions) (*Context, error) {
	if opts.SMLimit < 0 || opts.SMLimit > g.cfg.SMs {
		return nil, fmt.Errorf("sim: context %q: SMLimit %d out of range [0,%d]", opts.Label, opts.SMLimit, g.cfg.SMs)
	}
	if !opts.NoMemCharge {
		if err := g.AllocMemory(g.cfg.ContextMemBytes); err != nil {
			return nil, fmt.Errorf("sim: context %q: %w", opts.Label, err)
		}
	}
	c := &Context{
		gpu:      g,
		id:       len(g.contexts),
		SMLimit:  opts.SMLimit,
		Isolated: opts.Isolated,
		Priority: opts.Priority,
		label:    opts.Label,
		owner:    opts.Owner,
	}
	g.contexts = append(g.contexts, c)
	return c, nil
}

// NewQueue creates a device queue bound to the context.
func (c *Context) NewQueue(label string) *Queue {
	q := &Queue{ctx: c, id: len(c.gpu.queues), label: label}
	c.gpu.queues = append(c.gpu.queues, q)
	return q
}

// AllocMemory reserves device memory, failing with an error that unwraps to
// ErrOutOfMemory when capacity is exceeded.
func (g *GPU) AllocMemory(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("sim: negative allocation %d", bytes)
	}
	if g.memUsed+bytes > g.cfg.MemoryBytes {
		return fmt.Errorf("%w: want %d, free %d", ErrOutOfMemory, bytes, g.cfg.MemoryBytes-g.memUsed)
	}
	g.memUsed += bytes
	return nil
}

// FreeMemory releases device memory previously reserved with AllocMemory.
func (g *GPU) FreeMemory(bytes int64) {
	g.memUsed -= bytes
	if g.memUsed < 0 {
		g.memUsed = 0
	}
}

// MemUsed reports currently reserved device memory in bytes.
func (g *GPU) MemUsed() int64 { return g.memUsed }

// ErrOutOfMemory indicates a device memory allocation could not be satisfied.
var ErrOutOfMemory = fmt.Errorf("sim: out of device memory")

// Tracer observes kernel execution on the device; attach one with AddTracer
// to reconstruct timelines (Gantt charts, utilization traces). Callbacks run
// synchronously inside the simulation loop and must not mutate device state.
type Tracer interface {
	// KernelStart fires when a kernel begins executing (reaches its queue
	// head and receives an allocation).
	KernelStart(at Time, queue *Queue, k *Kernel)
	// KernelEnd fires when the kernel retires; avgSMs is its time-averaged
	// SM allocation over the execution.
	KernelEnd(at Time, queue *Queue, k *Kernel, avgSMs float64)
}

// QueueLoad is one queue's instantaneous state in an allocation snapshot:
// what is running, the SMs it was granted and wanted, and the backlog behind
// it. Snapshots are handed to AllocationTracer subscribers; the slice and its
// entries are only valid for the duration of the callback (the device reuses
// the buffer), so observers must copy what they keep.
type QueueLoad struct {
	// Queue is the observed queue (its Context carries SMLimit and Owner).
	Queue *Queue
	// Running is the executing kernel, nil when the queue head is idle.
	Running *Kernel
	// Alloc is the SMs granted to the running compute kernel (0 for memcpy
	// or idle queues).
	Alloc float64
	// Demand is the SMs the running compute kernel wants under its context's
	// SM cap.
	Demand float64
	// Want is the unrestricted SM appetite of the queue's head — the running
	// kernel's saturation-bounded demand ignoring context caps, or the next
	// pending kernel's when the queue is idle or paused with a backlog. It is
	// what the queue could use if every restriction were lifted, the quantity
	// quota and bubble invariants compare allocations against.
	Want float64
	// Pending counts kernels queued behind the running one.
	Pending int
	// Paused reports whether dispatch from the queue is suspended.
	Paused bool
}

// AllocationTracer extends Tracer: implementations are additionally notified
// every time the device recomputes SM allocations (enqueue, completion,
// pause/resume, SM-limit changes), with a snapshot of every queue's load.
// Between notifications allocations are piecewise-constant, so integrating
// the snapshots reconstructs the exact allocation history — the substrate of
// the invariant checker's conservation, quota and bubble accounting. The
// callback runs synchronously inside the simulation loop; it must not mutate
// device state and must copy any load it retains.
type AllocationTracer interface {
	Tracer
	AllocationsChanged(at Time, loads []QueueLoad)
}

// EnqueueTracer extends Tracer: implementations additionally observe every
// kernel joining a device queue, which makes per-queue FIFO order checkable
// (a started kernel must be the oldest enqueued-but-unstarted one).
type EnqueueTracer interface {
	Tracer
	KernelEnqueued(at Time, queue *Queue, k *Kernel)
}

// RemovalTracer extends Tracer: implementations additionally observe kernels
// removed from a queue's pending backlog without executing (client-crash
// teardown via Queue.CancelPending), which keeps FIFO and conservation
// bookkeeping exact across client churn.
type RemovalTracer interface {
	Tracer
	KernelsRemoved(at Time, queue *Queue, ks []*Kernel)
}

// AddTracer attaches a tracer alongside any already attached; all tracers
// observe every kernel, in attachment order. Tracers also implementing
// AllocationTracer or EnqueueTracer receive the extended notifications. nil
// tracers are ignored. With no tracers attached, the kernel hot path performs
// no tracing work and no allocations.
func (g *GPU) AddTracer(t Tracer) {
	if t == nil {
		return
	}
	g.tracers = append(g.tracers, t)
	if at, ok := t.(AllocationTracer); ok {
		g.allocTracers = append(g.allocTracers, at)
	}
	if et, ok := t.(EnqueueTracer); ok {
		g.enqTracers = append(g.enqTracers, et)
	}
	if rt, ok := t.(RemovalTracer); ok {
		g.removalTracers = append(g.removalTracers, rt)
	}
}

// RemoveTracer detaches a previously attached tracer (a no-op if absent).
func (g *GPU) RemoveTracer(t Tracer) {
	for i, have := range g.tracers {
		if have == t {
			g.tracers = append(g.tracers[:i], g.tracers[i+1:]...)
			break
		}
	}
	if at, ok := t.(AllocationTracer); ok {
		for i, have := range g.allocTracers {
			if have == at {
				g.allocTracers = append(g.allocTracers[:i], g.allocTracers[i+1:]...)
				break
			}
		}
	}
	if et, ok := t.(EnqueueTracer); ok {
		for i, have := range g.enqTracers {
			if have == et {
				g.enqTracers = append(g.enqTracers[:i], g.enqTracers[i+1:]...)
				break
			}
		}
	}
	if rt, ok := t.(RemovalTracer); ok {
		for i, have := range g.removalTracers {
			if have == rt {
				g.removalTracers = append(g.removalTracers[:i], g.removalTracers[i+1:]...)
				break
			}
		}
	}
}

// SetTracer replaces ALL attached tracers with t (nil detaches everything).
//
// Deprecated: SetTracer silently dropped any previously attached tracer,
// which prevented the timeline recorder and other observers from coexisting.
// Use AddTracer instead; SetTracer is kept as a shim for older callers.
func (g *GPU) SetTracer(t Tracer) {
	g.tracers = g.tracers[:0]
	g.allocTracers = g.allocTracers[:0]
	g.enqTracers = g.enqTracers[:0]
	g.removalTracers = g.removalTracers[:0]
	g.AddTracer(t)
}

// notifyEnqueued tells enqueue tracers a kernel joined q's pending list.
func (g *GPU) notifyEnqueued(q *Queue, k *Kernel) {
	for _, t := range g.enqTracers {
		t.KernelEnqueued(g.eng.Now(), q, k)
	}
}

// Loads snapshots every queue's instantaneous load into buf (reused when
// capacity allows). The Want field covers the running kernel or, for idle and
// paused queues with a backlog, the head pending kernel.
func (g *GPU) Loads(buf []QueueLoad) []QueueLoad {
	buf = buf[:0]
	for _, q := range g.queues {
		ql := QueueLoad{Queue: q, Pending: len(q.pending), Paused: q.paused}
		if e := q.run; e != nil {
			ql.Running = e.rec.k
			ql.Alloc = e.alloc
			ql.Demand = e.demand
			if e.rec.k.IsCompute() {
				ql.Want = float64(e.rec.k.SMDemand(0, g.cfg.SMs))
			}
		} else if len(q.pending) > 0 {
			if head := q.pending[0].k; head.IsCompute() {
				ql.Want = float64(head.SMDemand(0, g.cfg.SMs))
			}
		}
		buf = append(buf, ql)
	}
	return buf
}

// Enqueue submits a kernel to the queue at virtual time at (>= now; the
// caller charges host-side launch latency itself, typically via Host). onDone
// fires when the kernel completes; it may be nil. Enqueue panics on an
// invalid kernel — launching garbage is a programming error, matching CUDA's
// behavior of failing the launch.
func (q *Queue) Enqueue(at Time, k *Kernel, onDone func(at Time)) {
	if err := k.Validate(); err != nil {
		panic(err)
	}
	g := q.ctx.gpu
	if at <= g.eng.Now() {
		q.pending = append(q.pending, launchRecord{k: k, onDone: onDone})
		g.notifyEnqueued(q, k)
		g.reschedule()
		return
	}
	g.eng.Schedule(at, func() {
		q.pending = append(q.pending, launchRecord{k: k, onDone: onDone})
		g.notifyEnqueued(q, k)
		g.reschedule()
	})
}

// runningExecs returns the execs currently eligible to run, starting queued
// heads as needed.
func (g *GPU) runningExecs() []*exec {
	var out []*exec
	for _, q := range g.queues {
		if q.run == nil && !q.paused && len(q.pending) > 0 {
			rec := q.pending[0]
			q.pending = q.pending[1:]
			e := &exec{q: q, rec: rec, started: g.eng.Now()}
			if rec.k.IsCompute() {
				e.remaining = float64(rec.k.Work)
			} else {
				e.remaining = float64(rec.k.Bytes)
			}
			q.run = e
			for _, t := range g.tracers {
				t.KernelStart(e.started, q, rec.k)
			}
		}
		if q.run != nil {
			out = append(out, q.run)
		}
	}
	return out
}

// advance integrates in-flight work from the last accounting instant to now
// at the rates computed by the previous update pass.
func (g *GPU) advance() {
	now := g.eng.Now()
	dt := float64(now - g.lastAcct)
	if dt > 0 {
		for _, q := range g.queues {
			e := q.run
			if e == nil {
				continue
			}
			e.remaining -= e.rate * dt
			if e.remaining < 0 {
				e.remaining = 0
			}
			if e.rec.k.IsCompute() {
				g.busySMIntegral += e.alloc * dt
				e.allocIntg += e.alloc * dt
			}
		}
		if g.lastAnyBusy {
			g.anyBusyTime += now - g.lastAcct
		}
	}
	g.lastAcct = now
}

// reschedule brings the device to a consistent state at the current virtual
// time: it integrates elapsed work, retires finished kernels (starting queued
// successors), recomputes SM allocations and contention slowdowns, and arms
// the next completion event. It must be called whenever the runnable set
// changes (enqueue, pause, resume) and on every completion event.
//
// Completion callbacks run only after the device state is consistent, so they
// may freely enqueue further kernels (which re-enters reschedule).
func (g *GPU) reschedule() {
	g.advance()

	var callbacks []launchRecord
	var execs []*exec
	for {
		execs = g.runningExecs()
		g.assignRates(execs)
		finished := false
		for _, e := range execs {
			if e.remaining <= 0.5 {
				e.q.run = nil
				g.kernelsDone++
				if len(g.tracers) > 0 {
					avg := 0.0
					if dur := g.eng.Now() - e.started; dur > 0 {
						avg = e.allocIntg / float64(dur)
					}
					for _, t := range g.tracers {
						t.KernelEnd(g.eng.Now(), e.q, e.rec.k, avg)
					}
				}
				if e.rec.onDone != nil {
					callbacks = append(callbacks, e.rec)
				}
				finished = true
			}
		}
		if !finished {
			break
		}
	}

	// Record whether any compute kernel is running, for busy-time accounting.
	g.lastAnyBusy = false
	for _, e := range execs {
		if e.rec.k.IsCompute() {
			g.lastAnyBusy = true
			break
		}
	}

	// Arm the earliest next completion.
	if g.completion != nil {
		g.completion.Cancel()
		g.completion = nil
	}
	next := Time(math.MaxInt64)
	for _, e := range execs {
		if e.rate <= 0 {
			continue
		}
		d := Time(math.Ceil(e.remaining / e.rate))
		if d < 1 {
			d = 1
		}
		if g.eng.Now()+d < next {
			next = g.eng.Now() + d
		}
	}
	if next != Time(math.MaxInt64) {
		g.completion = g.eng.Schedule(next, func() {
			g.completion = nil
			g.reschedule()
		})
	}

	// With the device in a consistent state, publish the new allocation
	// picture before completion callbacks run (they may re-enter reschedule
	// and publish again at the same instant — a zero-width interval).
	if len(g.allocTracers) > 0 {
		g.loadBuf = g.Loads(g.loadBuf)
		for _, t := range g.allocTracers {
			t.AllocationsChanged(g.eng.Now(), g.loadBuf)
		}
	}

	for _, rec := range callbacks {
		rec.onDone(g.eng.Now())
	}
}

// assignRates computes, for the current runnable set, each kernel's SM
// allocation (priority tiers, per-context caps, proportional sharing of the
// remainder) and contention slowdown, then each memcpy's PCIe share.
func (g *GPU) assignRates(execs []*exec) {
	var compute, dma []*exec
	for _, e := range execs {
		if e.rec.k.IsCompute() {
			compute = append(compute, e)
		} else {
			dma = append(dma, e)
		}
	}

	// --- SM allocation ---
	// Group compute kernels by priority tier, highest first.
	byPrio := map[int][]*exec{}
	var prios []int
	for _, e := range compute {
		p := e.q.ctx.Priority
		if _, ok := byPrio[p]; !ok {
			prios = append(prios, p)
		}
		byPrio[p] = append(byPrio[p], e)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(prios)))

	// Within each priority tier, SMs are assigned by hierarchical max-min
	// fairness, modeling the hardware scheduler's fair block dispatch across
	// equal-priority device queues (paper footnote 1): a context with a
	// small (restricted) demand keeps its full share while unrestricted
	// kernels expand into whatever capacity is left — the property the
	// Semi-SP execution mode (§4.4.1) relies on.
	available := float64(g.cfg.SMs)
	for _, p := range prios {
		tier := byPrio[p]
		// Group kernels by context: the context's demand is the sum of its
		// kernels' demands, capped by its SM limit.
		type ctxGroup struct {
			ctx     *Context
			kernels []*exec
			demand  float64
		}
		var groups []*ctxGroup
		byCtx := map[*Context]*ctxGroup{}
		for _, e := range tier {
			grp := byCtx[e.q.ctx]
			if grp == nil {
				grp = &ctxGroup{ctx: e.q.ctx}
				byCtx[e.q.ctx] = grp
				groups = append(groups, grp)
			}
			grp.kernels = append(grp.kernels, e)
			e.demand = float64(e.rec.k.SMDemand(e.q.ctx.SMLimit, g.cfg.SMs))
			grp.demand += e.demand
		}
		demands := make([]float64, len(groups))
		for i, grp := range groups {
			d := grp.demand
			if grp.ctx.SMLimit > 0 && d > float64(grp.ctx.SMLimit) {
				d = float64(grp.ctx.SMLimit)
			}
			demands[i] = d
		}
		grants := waterFill(demands, available)
		granted := 0.0
		for i, grp := range groups {
			granted += grants[i]
			// Within the context, max-min across its kernels.
			kd := make([]float64, len(grp.kernels))
			for j, e := range grp.kernels {
				kd[j] = float64(e.rec.k.SMDemand(e.q.ctx.SMLimit, g.cfg.SMs))
			}
			kg := waterFill(kd, grants[i])
			for j, e := range grp.kernels {
				e.alloc = kg[j]
			}
		}
		available -= granted
		if available < 0 {
			available = 0
		}
	}

	// --- Bandwidth contention ---
	// Shared pool: all non-isolated contexts contend on budget 1.0. Each
	// isolated context has a private budget proportional to its SM share.
	sharedDemand := 0.0
	isoDemand := map[*Context]float64{}
	for _, e := range compute {
		d := e.demandBW(g.cfg.BWSatOccupancy)
		if e.q.ctx.Isolated {
			isoDemand[e.q.ctx] += d
		} else {
			sharedDemand += d
		}
	}
	for _, e := range compute {
		var over float64
		if e.q.ctx.Isolated {
			budget := float64(e.q.ctx.SMLimit) / float64(g.cfg.SMs)
			if budget <= 0 {
				budget = 1
			}
			over = isoDemand[e.q.ctx]/budget - 1
		} else {
			over = sharedDemand - 1
		}
		slow := 1.0
		if over > 0 {
			slow = 1 + e.rec.k.MemIntensity*over
		}
		// Co-residency penalty: when this kernel's SM scope overlaps other
		// kernels' (either side unrestricted) and the combined demand
		// oversubscribes the device, block interleaving thrashes shared
		// resources. Strictly partitioned (restricted or MIG) contexts on
		// disjoint SM sets never pay this — the asymmetry that makes
		// controlled spatial sharing (§3.3) profitable.
		if beta := g.cfg.InterferenceBeta; beta > 0 && e.alloc > 0 {
			overlapDemand := e.demand
			for _, o := range compute {
				if o == e || o.alloc <= 0 {
					continue // starved kernels occupy no SMs, no thrash
				}
				if e.q.ctx.SMLimit == 0 || o.q.ctx.SMLimit == 0 {
					overlapDemand += o.demand
				}
			}
			if oversub := (overlapDemand - float64(g.cfg.SMs)) / float64(g.cfg.SMs); oversub > 0 {
				slow *= 1 + beta*oversub
			}
		}
		if slow > g.cfg.SlowdownCap {
			slow = g.cfg.SlowdownCap
		}
		e.rate = e.alloc / slow
	}

	// --- PCIe sharing ---
	if n := len(dma); n > 0 {
		share := g.cfg.PCIeBytesPerNS / float64(n)
		for _, e := range dma {
			e.rate = share
			e.alloc = 0
		}
	}
}

// waterFill distributes capacity across demands by max-min fairness: demands
// at or below the fair share are fully satisfied; the remainder is split
// equally among the rest. The returned grants sum to min(capacity,
// sum(demands)).
func waterFill(demands []float64, capacity float64) []float64 {
	grants := make([]float64, len(demands))
	if capacity <= 0 {
		return grants
	}
	unsat := make([]int, 0, len(demands))
	for i := range demands {
		unsat = append(unsat, i)
	}
	remaining := capacity
	for len(unsat) > 0 {
		share := remaining / float64(len(unsat))
		progressed := false
		next := unsat[:0]
		for _, i := range unsat {
			if demands[i] <= share {
				grants[i] = demands[i]
				remaining -= demands[i]
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		unsat = next
		if !progressed {
			// All remaining demands exceed the fair share: split equally.
			share = remaining / float64(len(unsat))
			for _, i := range unsat {
				grants[i] = share
			}
			break
		}
	}
	return grants
}

// demandBW is the kernel's bandwidth demand at its current allocation:
// intensity scaled by achieved occupancy, with a saturation knee — the
// kernel reaches its full bandwidth demand at BWSatOccupancy of its
// saturation SM count (memory-bound kernels saturate the bus early).
func (e *exec) demandBW(satOcc float64) float64 {
	sat := float64(e.rec.k.SaturationSMs)
	if sat <= 0 {
		return 0
	}
	if satOcc > 0 && satOcc < 1 {
		sat *= satOcc
	}
	f := e.alloc / sat
	if f > 1 {
		f = 1
	}
	return e.rec.k.MemIntensity * f
}

// Stats is a snapshot of device accounting.
type Stats struct {
	// KernelsCompleted counts retired kernels.
	KernelsCompleted int64
	// BusySMTime is the integral of allocated compute SMs over time, in
	// SM-nanoseconds. Divide by (SMs x elapsed) for average utilization.
	BusySMTime float64
	// AnyBusyTime is the total time at least one compute kernel was running.
	AnyBusyTime Time
}

// Stats returns accounting integrated up to the current virtual time.
func (g *GPU) Stats() Stats {
	g.advance()
	return Stats{
		KernelsCompleted: g.kernelsDone,
		BusySMTime:       g.busySMIntegral,
		AnyBusyTime:      g.anyBusyTime,
	}
}

// Utilization returns average SM utilization in [0,1] over the elapsed
// virtual time window [0, now].
func (g *GPU) Utilization() float64 {
	now := g.eng.Now()
	if now == 0 {
		return 0
	}
	s := g.Stats()
	return s.BusySMTime / (float64(g.cfg.SMs) * float64(now))
}

// ActiveSMs returns the number of SMs allocated to running compute kernels
// at this instant — instantaneous occupancy for timeline introspection.
func (g *GPU) ActiveSMs() float64 {
	total := 0.0
	for _, q := range g.queues {
		if q.run != nil && q.run.rec.k.IsCompute() {
			total += q.run.alloc
		}
	}
	return total
}

// Quiescent reports whether no queue holds running or pending kernels.
func (g *GPU) Quiescent() bool {
	for _, q := range g.queues {
		if !q.Idle() {
			return false
		}
	}
	return true
}
