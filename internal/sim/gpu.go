package sim

import (
	"fmt"
	"math"
)

// Config holds the simulated device parameters. DefaultConfig models the
// paper's testbed, an Nvidia A100 (108 SMs, 40 GB), with the host-side cost
// constants the paper measures in §6.9.
type Config struct {
	// SMs is the number of streaming multiprocessors (108 on A100).
	SMs int
	// MemoryBytes is the device memory capacity (40 GB on A100).
	MemoryBytes int64
	// PCIeBytesPerNS is the host<->device transfer bandwidth in bytes per
	// nanosecond (25 GB/s PCIe4 x16 effective ~= 25 bytes/ns).
	PCIeBytesPerNS float64
	// KernelLaunch is the host-side cost of launching one kernel (~3us).
	KernelLaunch Time
	// ContextSwitch is the vacuum period when a client redirects kernel
	// launches from one GPU context to another through MPS (~50us). The
	// vacuum delays that client's kernels only; other device queues keep
	// executing (§6.9).
	ContextSwitch Time
	// SquadSync is the host<->device synchronization cost at a kernel-squad
	// boundary (~20us).
	SquadSync Time
	// ContextMemBytes is the device memory consumed per additional MPS
	// context (~230 MB, §6.9).
	ContextMemBytes int64
	// SlowdownCap bounds the per-kernel contention slowdown ratio. The paper
	// measures a kernel-level slowdown no larger than 2x even against highly
	// memory-intensive co-runners (Fig 9a).
	SlowdownCap float64
	// BWSatOccupancy is the fraction of a kernel's saturation SM count at
	// which it already reaches its full memory-bandwidth demand: memory-
	// bound kernels saturate the bus well below full occupancy. 0 or 1
	// disables the knee (linear scaling).
	BWSatOccupancy float64
	// InterferenceBeta scales the co-residency penalty: kernels whose SM
	// scopes overlap (at least one side launched without an SM-affinity
	// restriction) slow down by 1 + beta x oversubscription when their
	// combined SM demand exceeds capacity — the uncontrolled interleaving
	// the paper attributes to unbounded sharing (Fig 3b, §3.2). Strictly
	// partitioned contexts never pay it, which is what makes controlled
	// spatial sharing attractive.
	InterferenceBeta float64
}

// DefaultConfig returns the A100-calibrated configuration used throughout the
// evaluation.
func DefaultConfig() Config {
	return Config{
		SMs:              108,
		MemoryBytes:      40 << 30,
		PCIeBytesPerNS:   25.0,
		KernelLaunch:     3 * Microsecond,
		ContextSwitch:    50 * Microsecond,
		SquadSync:        20 * Microsecond,
		ContextMemBytes:  230 << 20,
		SlowdownCap:      2.0,
		BWSatOccupancy:   0.5,
		InterferenceBeta: 0.16,
	}
}

// Validate reports an error for inconsistent device parameters.
func (c *Config) Validate() error {
	if c.SMs < 1 {
		return fmt.Errorf("sim: config: SMs must be >= 1, got %d", c.SMs)
	}
	if c.PCIeBytesPerNS <= 0 {
		return fmt.Errorf("sim: config: PCIeBytesPerNS must be positive, got %g", c.PCIeBytesPerNS)
	}
	if c.SlowdownCap < 1 {
		return fmt.Errorf("sim: config: SlowdownCap must be >= 1, got %g", c.SlowdownCap)
	}
	if c.InterferenceBeta < 0 {
		return fmt.Errorf("sim: config: InterferenceBeta must be >= 0, got %g", c.InterferenceBeta)
	}
	return nil
}

// Context is a simulated GPU context. Kernels launched into a context's
// device queues are collectively capped at SMLimit SMs (0 = unrestricted),
// mirroring MPS contexts created with cuCtxCreate_v3 SM affinity. A context
// with Isolated set also receives a private memory-bandwidth slice
// proportional to its SM share, modeling MIG hardware partitions.
type Context struct {
	gpu *GPU
	id  int

	// SMLimit caps the SMs usable by all kernels of this context combined;
	// 0 means no restriction.
	SMLimit int
	// Isolated grants the context a private bandwidth slice (MIG-style);
	// non-isolated contexts contend on the shared bandwidth pool (MPS-style).
	Isolated bool
	// Priority orders hardware dispatch: higher-priority contexts take the
	// SMs they want before lower tiers share the remainder. Equal priorities
	// share fairly, as Volta+ hardware schedulers do (paper footnote 1).
	Priority int

	label string
	owner int // OwnerTag-encoded client slot, 0 = unowned
}

// ID returns the context's device-unique identifier.
func (c *Context) ID() int { return c.id }

// OwnerTag encodes a deploying client's slot ID for ContextOptions.Owner.
// The encoding reserves 0 (the field's zero value) for "unowned", so
// schedulers can tag contexts without a sentinel colliding with client 0.
func OwnerTag(clientID int) int { return clientID + 1 }

// Owner decodes the context's owner tag: the deploying client's slot ID and
// whether the context is owned at all. Invariant checkers use it to attribute
// SM allocations to clients without parsing debug labels.
func (c *Context) Owner() (clientID int, ok bool) {
	if c.owner == 0 {
		return -1, false
	}
	return c.owner - 1, true
}

// SetSMLimit re-restricts the context to limit SMs (0 = unrestricted),
// taking effect immediately for queued and future kernels (a running kernel
// keeps its allocation policy from the next rate recomputation on). This
// models tearing down and re-establishing an MPS context with a different SM
// affinity; callers that want the associated ~50us vacuum charge it
// themselves (e.g. by pausing the queue), as adaptive spatial-sharing
// schedulers like GSLICE do.
func (c *Context) SetSMLimit(limit int) error {
	if limit < 0 || limit > c.gpu.cfg.SMs {
		return fmt.Errorf("sim: context %q: SMLimit %d out of range [0,%d]", c.label, limit, c.gpu.cfg.SMs)
	}
	if limit != c.SMLimit {
		c.SMLimit = limit
		c.gpu.reschedule()
	}
	return nil
}

// Label returns the debug label given at creation.
func (c *Context) Label() string { return c.label }

// launchRecord is a kernel sitting in (or running from) a device queue.
type launchRecord struct {
	k      *Kernel
	onDone func(at Time)
}

// Queue is a device queue (ring buffer in real hardware): kernels in one
// queue execute in FIFO order, one at a time; concurrency happens across
// queues. A queue belongs to exactly one context and inherits its SM limit,
// isolation and priority.
type Queue struct {
	ctx     *Context
	id      int
	pending []launchRecord
	run     *exec // currently executing head, nil if idle
	paused  bool
	label   string
}

// Context returns the owning context.
func (q *Queue) Context() *Context { return q.ctx }

// Len reports the number of kernels in the queue, including the running one.
func (q *Queue) Len() int {
	n := len(q.pending)
	if q.run != nil {
		n++
	}
	return n
}

// Idle reports whether the queue has no running and no pending kernels.
func (q *Queue) Idle() bool { return q.run == nil && len(q.pending) == 0 }

// Label returns the debug label given at creation.
func (q *Queue) Label() string { return q.label }

// Pause stops the queue from dispatching its next pending kernel. A kernel
// already executing is not preempted (GPU kernels are un-preemptable); it
// runs to completion. Used by time-slicing schedulers.
func (q *Queue) Pause() {
	if !q.paused {
		q.paused = true
		// A queue that is mid-kernel or has nothing queued dispatches nothing
		// either way: pausing it leaves the runnable set untouched.
		if q.run != nil || len(q.pending) == 0 {
			q.ctx.gpu.rescheduleLight()
		} else {
			q.ctx.gpu.reschedule()
		}
	}
}

// Resume re-enables dispatch from the queue.
func (q *Queue) Resume() {
	if q.paused {
		q.paused = false
		// Only a resumable head (idle queue with a backlog) can change the
		// runnable set.
		if q.run != nil || len(q.pending) == 0 {
			q.ctx.gpu.rescheduleLight()
		} else {
			q.ctx.gpu.reschedule()
		}
	}
}

// Paused reports whether the queue is paused.
func (q *Queue) Paused() bool { return q.paused }

// PendingKernel is one launch record removed from a queue before execution.
type PendingKernel struct {
	K      *Kernel
	OnDone func(at Time)
}

// CancelPending drops every pending (not yet executing) kernel from the
// queue and returns the removed records so the caller can settle their
// completion bookkeeping — crash teardown for a departed client. The running
// kernel, if any, is not preempted (GPU kernels are un-preemptable) and
// completes normally. Removal is reported to RemovalTracer subscribers.
func (q *Queue) CancelPending() []PendingKernel {
	if len(q.pending) == 0 {
		return nil
	}
	g := q.ctx.gpu
	out := make([]PendingKernel, len(q.pending))
	var ks []*Kernel
	if len(g.removalTracers) > 0 {
		ks = make([]*Kernel, len(q.pending))
	}
	for i, rec := range q.pending {
		out[i] = PendingKernel{K: rec.k, OnDone: rec.onDone}
		if ks != nil {
			ks[i] = rec.k
		}
	}
	q.pending = q.pending[:0]
	for _, t := range g.removalTracers {
		t.KernelsRemoved(g.eng.Now(), q, ks)
	}
	// Dropping pending (never-started) kernels leaves every running kernel
	// and rate untouched: the light pass replays the snapshot and completion
	// re-arm without recomputation.
	g.rescheduleLight()
	return out
}

// exec is a kernel in flight. exec objects are pooled by the owning GPU:
// retirement recycles them, so holding one past its KernelEnd is invalid.
type exec struct {
	q         *Queue
	rec       launchRecord
	remaining float64 // compute: SM*ns of work left; memcpy: bytes left
	rate      float64 // compute: effective SMs; memcpy: bytes per ns
	alloc     float64 // compute: SMs granted before slowdown (for accounting)
	demand    float64 // compute: SMs wanted under the context cap
	started   Time
	allocIntg float64 // integral of alloc over time, for avg-SM tracing
	grpIdx    int     // assignRates scratch: context-group rank within a tier
}

// GPU is the simulated device. Create one per experiment with NewGPU, create
// contexts and queues, and enqueue kernels; the GPU schedules itself on the
// shared Engine. GPU is not safe for concurrent use (the simulation is
// single-threaded).
type GPU struct {
	eng *Engine
	cfg Config

	contexts []*Context
	queues   []*Queue

	completion   *Event
	onCompletion func() // cached completion callback (one closure per device)
	lastAcct     Time

	// accounting
	busySMIntegral float64 // integral of allocated compute SMs over time (SM*ns)
	anyBusyTime    Time    // total time with >= 1 compute kernel running
	lastAnyBusy    bool
	kernelsDone    int64
	memUsed        int64

	tracers        []Tracer
	allocTracers   []AllocationTracer
	enqTracers     []EnqueueTracer
	removalTracers []RemovalTracer
	loadBuf        []QueueLoad

	// Hot-path scratch, reused across reschedule passes so the steady-state
	// event loop allocates nothing. execBuf and cbBuf are taken (swapped to
	// nil) for the duration of a pass because completion callbacks re-enter
	// reschedule; the assignRates buffers below them never live across a
	// callback and are reused directly.
	execBuf  []*exec
	cbBuf    []launchRecord
	execPool []*exec // recycled exec records

	computeBuf []*exec
	dmaBuf     []*exec
	tierBuf    []*exec
	groupBuf   []ctxGroup
	demandBuf  []float64
	grantBuf   []float64
	kdBuf      []float64
	kgBuf      []float64
	unsatBuf   []int
	isoBuf     []float64 // per-context isolated-bandwidth demand, by ctx id

	// launchFree pools deferred-enqueue records (Enqueue with a future
	// launch time — every host-charged kernel launch). Each entry carries
	// its own fire closure, built once, so steady-state deferred launches
	// allocate nothing.
	launchFree []*launchEvent
}

// launchEvent defers one Enqueue to its launch time; pooled on the GPU.
// fn is the pre-bound method value for run, minted once per event so the
// pooled steady state schedules without allocating.
type launchEvent struct {
	g   *GPU
	q   *Queue
	rec launchRecord
	fn  func()
}

func (le *launchEvent) run() {
	q, rec := le.q, le.rec
	le.q, le.rec = nil, launchRecord{}
	le.g.launchFree = append(le.g.launchFree, le)
	q.enqueueNow(rec)
}

// deferEnqueue schedules rec to join q at time at, reusing a pooled
// launchEvent (and its closure) when one is free. Pool misses mint a chunk
// at a time: deferred launches arrive in bursts (one per squad kernel), so
// amortizing the struct allocation cuts the cold-start cost of a fresh
// device by ~8x.
func (g *GPU) deferEnqueue(at Time, q *Queue, rec launchRecord) {
	if len(g.launchFree) == 0 {
		chunk := make([]launchEvent, 8)
		for i := range chunk {
			le := &chunk[i]
			le.g = g
			le.fn = le.run
			g.launchFree = append(g.launchFree, le)
		}
	}
	n := len(g.launchFree)
	le := g.launchFree[n-1]
	g.launchFree[n-1] = nil
	g.launchFree = g.launchFree[:n-1]
	le.q, le.rec = q, rec
	g.eng.Schedule(at, le.fn)
}

// NewGPU creates a device with the given configuration, scheduled on eng.
// It panics if the configuration is invalid (a programming error).
func NewGPU(eng *Engine, cfg Config) *GPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &GPU{eng: eng, cfg: cfg}
}

// Config returns the device configuration.
func (g *GPU) Config() Config { return g.cfg }

// Engine returns the simulation engine driving this device.
func (g *GPU) Engine() *Engine { return g.eng }

// ContextOptions configures NewContext.
type ContextOptions struct {
	// SMLimit caps SM usage (0 = unrestricted).
	SMLimit int
	// Isolated gives the context a private bandwidth slice (MIG-style).
	Isolated bool
	// Priority tiers hardware dispatch (higher first; default 0).
	Priority int
	// Label is a free-form debug label.
	Label string
	// NoMemCharge skips the per-context device-memory charge (used by
	// tests and by schedulers that account for context memory themselves).
	NoMemCharge bool
	// Owner tags the context with the deploying client's slot, encoded with
	// OwnerTag (the zero value means unowned). Invariant checkers rely on the
	// tag to attribute allocations and quotas per client.
	Owner int
}

// NewContext creates a GPU context. Each context consumes ContextMemBytes of
// device memory unless NoMemCharge is set; creation fails if memory is
// exhausted.
func (g *GPU) NewContext(opts ContextOptions) (*Context, error) {
	if opts.SMLimit < 0 || opts.SMLimit > g.cfg.SMs {
		return nil, fmt.Errorf("sim: context %q: SMLimit %d out of range [0,%d]", opts.Label, opts.SMLimit, g.cfg.SMs)
	}
	if !opts.NoMemCharge {
		if err := g.AllocMemory(g.cfg.ContextMemBytes); err != nil {
			return nil, fmt.Errorf("sim: context %q: %w", opts.Label, err)
		}
	}
	c := &Context{
		gpu:      g,
		id:       len(g.contexts),
		SMLimit:  opts.SMLimit,
		Isolated: opts.Isolated,
		Priority: opts.Priority,
		label:    opts.Label,
		owner:    opts.Owner,
	}
	g.contexts = append(g.contexts, c)
	return c, nil
}

// NewQueue creates a device queue bound to the context.
func (c *Context) NewQueue(label string) *Queue {
	q := &Queue{ctx: c, id: len(c.gpu.queues), label: label}
	c.gpu.queues = append(c.gpu.queues, q)
	return q
}

// AllocMemory reserves device memory, failing with an error that unwraps to
// ErrOutOfMemory when capacity is exceeded.
func (g *GPU) AllocMemory(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("sim: negative allocation %d", bytes)
	}
	if g.memUsed+bytes > g.cfg.MemoryBytes {
		return fmt.Errorf("%w: want %d, free %d", ErrOutOfMemory, bytes, g.cfg.MemoryBytes-g.memUsed)
	}
	g.memUsed += bytes
	return nil
}

// FreeMemory releases device memory previously reserved with AllocMemory.
func (g *GPU) FreeMemory(bytes int64) {
	g.memUsed -= bytes
	if g.memUsed < 0 {
		g.memUsed = 0
	}
}

// MemUsed reports currently reserved device memory in bytes.
func (g *GPU) MemUsed() int64 { return g.memUsed }

// ErrOutOfMemory indicates a device memory allocation could not be satisfied.
var ErrOutOfMemory = fmt.Errorf("sim: out of device memory")

// Tracer observes kernel execution on the device; attach one with AddTracer
// to reconstruct timelines (Gantt charts, utilization traces). Callbacks run
// synchronously inside the simulation loop and must not mutate device state.
type Tracer interface {
	// KernelStart fires when a kernel begins executing (reaches its queue
	// head and receives an allocation).
	KernelStart(at Time, queue *Queue, k *Kernel)
	// KernelEnd fires when the kernel retires; avgSMs is its time-averaged
	// SM allocation over the execution.
	KernelEnd(at Time, queue *Queue, k *Kernel, avgSMs float64)
}

// QueueLoad is one queue's instantaneous state in an allocation snapshot:
// what is running, the SMs it was granted and wanted, and the backlog behind
// it. Snapshots are handed to AllocationTracer subscribers; the slice and its
// entries are only valid for the duration of the callback (the device reuses
// the buffer), so observers must copy what they keep.
type QueueLoad struct {
	// Queue is the observed queue (its Context carries SMLimit and Owner).
	Queue *Queue
	// Running is the executing kernel, nil when the queue head is idle.
	Running *Kernel
	// Alloc is the SMs granted to the running compute kernel (0 for memcpy
	// or idle queues).
	Alloc float64
	// Demand is the SMs the running compute kernel wants under its context's
	// SM cap.
	Demand float64
	// Want is the unrestricted SM appetite of the queue's head — the running
	// kernel's saturation-bounded demand ignoring context caps, or the next
	// pending kernel's when the queue is idle or paused with a backlog. It is
	// what the queue could use if every restriction were lifted, the quantity
	// quota and bubble invariants compare allocations against.
	Want float64
	// Pending counts kernels queued behind the running one.
	Pending int
	// Paused reports whether dispatch from the queue is suspended.
	Paused bool
}

// AllocationTracer extends Tracer: implementations are additionally notified
// every time the device recomputes SM allocations (enqueue, completion,
// pause/resume, SM-limit changes), with a snapshot of every queue's load.
// Between notifications allocations are piecewise-constant, so integrating
// the snapshots reconstructs the exact allocation history — the substrate of
// the invariant checker's conservation, quota and bubble accounting. The
// callback runs synchronously inside the simulation loop; it must not mutate
// device state and must copy any load it retains.
type AllocationTracer interface {
	Tracer
	AllocationsChanged(at Time, loads []QueueLoad)
}

// EnqueueTracer extends Tracer: implementations additionally observe every
// kernel joining a device queue, which makes per-queue FIFO order checkable
// (a started kernel must be the oldest enqueued-but-unstarted one).
type EnqueueTracer interface {
	Tracer
	KernelEnqueued(at Time, queue *Queue, k *Kernel)
}

// RemovalTracer extends Tracer: implementations additionally observe kernels
// removed from a queue's pending backlog without executing (client-crash
// teardown via Queue.CancelPending), which keeps FIFO and conservation
// bookkeeping exact across client churn.
type RemovalTracer interface {
	Tracer
	KernelsRemoved(at Time, queue *Queue, ks []*Kernel)
}

// AddTracer attaches a tracer alongside any already attached; all tracers
// observe every kernel, in attachment order. Tracers also implementing
// AllocationTracer or EnqueueTracer receive the extended notifications. nil
// tracers are ignored. With no tracers attached, the kernel hot path performs
// no tracing work and no allocations.
func (g *GPU) AddTracer(t Tracer) {
	if t == nil {
		return
	}
	g.tracers = append(g.tracers, t)
	if at, ok := t.(AllocationTracer); ok {
		g.allocTracers = append(g.allocTracers, at)
	}
	if et, ok := t.(EnqueueTracer); ok {
		g.enqTracers = append(g.enqTracers, et)
	}
	if rt, ok := t.(RemovalTracer); ok {
		g.removalTracers = append(g.removalTracers, rt)
	}
}

// RemoveTracer detaches a previously attached tracer (a no-op if absent).
func (g *GPU) RemoveTracer(t Tracer) {
	for i, have := range g.tracers {
		if have == t {
			g.tracers = append(g.tracers[:i], g.tracers[i+1:]...)
			break
		}
	}
	if at, ok := t.(AllocationTracer); ok {
		for i, have := range g.allocTracers {
			if have == at {
				g.allocTracers = append(g.allocTracers[:i], g.allocTracers[i+1:]...)
				break
			}
		}
	}
	if et, ok := t.(EnqueueTracer); ok {
		for i, have := range g.enqTracers {
			if have == et {
				g.enqTracers = append(g.enqTracers[:i], g.enqTracers[i+1:]...)
				break
			}
		}
	}
	if rt, ok := t.(RemovalTracer); ok {
		for i, have := range g.removalTracers {
			if have == rt {
				g.removalTracers = append(g.removalTracers[:i], g.removalTracers[i+1:]...)
				break
			}
		}
	}
}

// SetTracer replaces ALL attached tracers with t (nil detaches everything).
//
// Deprecated: SetTracer silently dropped any previously attached tracer,
// which prevented the timeline recorder and other observers from coexisting.
// Use AddTracer instead; SetTracer is kept as a shim for older callers.
func (g *GPU) SetTracer(t Tracer) {
	g.tracers = g.tracers[:0]
	g.allocTracers = g.allocTracers[:0]
	g.enqTracers = g.enqTracers[:0]
	g.removalTracers = g.removalTracers[:0]
	g.AddTracer(t)
}

// notifyEnqueued tells enqueue tracers a kernel joined q's pending list.
func (g *GPU) notifyEnqueued(q *Queue, k *Kernel) {
	for _, t := range g.enqTracers {
		t.KernelEnqueued(g.eng.Now(), q, k)
	}
}

// Loads snapshots every queue's instantaneous load into buf (reused when
// capacity allows). The Want field covers the running kernel or, for idle and
// paused queues with a backlog, the head pending kernel.
func (g *GPU) Loads(buf []QueueLoad) []QueueLoad {
	buf = buf[:0]
	for _, q := range g.queues {
		ql := QueueLoad{Queue: q, Pending: len(q.pending), Paused: q.paused}
		if e := q.run; e != nil {
			ql.Running = e.rec.k
			ql.Alloc = e.alloc
			ql.Demand = e.demand
			if e.rec.k.IsCompute() {
				ql.Want = float64(e.rec.k.SMDemand(0, g.cfg.SMs))
			}
		} else if len(q.pending) > 0 {
			if head := q.pending[0].k; head.IsCompute() {
				ql.Want = float64(head.SMDemand(0, g.cfg.SMs))
			}
		}
		buf = append(buf, ql)
	}
	return buf
}

// Enqueue submits a kernel to the queue at virtual time at (>= now; the
// caller charges host-side launch latency itself, typically via Host). onDone
// fires when the kernel completes; it may be nil. Enqueue panics on an
// invalid kernel — launching garbage is a programming error, matching CUDA's
// behavior of failing the launch.
func (q *Queue) Enqueue(at Time, k *Kernel, onDone func(at Time)) {
	if err := k.Validate(); err != nil {
		panic(err)
	}
	g := q.ctx.gpu
	if at <= g.eng.Now() {
		q.enqueueNow(launchRecord{k: k, onDone: onDone})
		return
	}
	g.deferEnqueue(at, q, launchRecord{k: k, onDone: onDone})
}

// enqueueNow appends the record and brings the device up to date. When the
// queue is already executing a kernel (or is paused), the new arrival cannot
// change the runnable set or any rate, so the cheap light pass suffices.
func (q *Queue) enqueueNow(rec launchRecord) {
	g := q.ctx.gpu
	blocked := q.run != nil || q.paused
	q.pending = append(q.pending, rec)
	g.notifyEnqueued(q, rec.k)
	if blocked {
		g.rescheduleLight()
	} else {
		g.reschedule()
	}
}

// newExec takes a zeroed exec record from the pool (or allocates one).
func (g *GPU) newExec() *exec {
	if n := len(g.execPool); n > 0 {
		e := g.execPool[n-1]
		g.execPool[n-1] = nil
		g.execPool = g.execPool[:n-1]
		return e
	}
	return &exec{}
}

// freeExec recycles a retired exec. The record must no longer be reachable
// from any queue (q.run cleared) and its launchRecord already copied out.
func (g *GPU) freeExec(e *exec) {
	*e = exec{}
	g.execPool = append(g.execPool, e)
}

// popPending removes and returns the queue's head record, sliding the backlog
// down so the slice keeps its capacity (a [1:] reslice would leak the front
// and re-allocate on every enqueue/dispatch cycle).
func (q *Queue) popPending() launchRecord {
	rec := q.pending[0]
	copy(q.pending, q.pending[1:])
	q.pending[len(q.pending)-1] = launchRecord{}
	q.pending = q.pending[:len(q.pending)-1]
	return rec
}

// runningExecs appends the execs currently eligible to run to buf (reused
// when capacity allows), starting queued heads as needed.
func (g *GPU) runningExecs(buf []*exec) []*exec {
	out := buf[:0]
	for _, q := range g.queues {
		if q.run == nil && !q.paused && len(q.pending) > 0 {
			rec := q.popPending()
			e := g.newExec()
			e.q, e.rec, e.started = q, rec, g.eng.Now()
			if rec.k.IsCompute() {
				e.remaining = float64(rec.k.Work)
			} else {
				e.remaining = float64(rec.k.Bytes)
			}
			q.run = e
			for _, t := range g.tracers {
				t.KernelStart(e.started, q, rec.k)
			}
		}
		if q.run != nil {
			out = append(out, q.run)
		}
	}
	return out
}

// advance integrates in-flight work from the last accounting instant to now
// at the rates computed by the previous update pass.
func (g *GPU) advance() {
	now := g.eng.Now()
	dt := float64(now - g.lastAcct)
	if dt > 0 {
		for _, q := range g.queues {
			e := q.run
			if e == nil {
				continue
			}
			e.remaining -= e.rate * dt
			if e.remaining < 0 {
				e.remaining = 0
			}
			if e.rec.k.IsCompute() {
				g.busySMIntegral += e.alloc * dt
				e.allocIntg += e.alloc * dt
			}
		}
		if g.lastAnyBusy {
			g.anyBusyTime += now - g.lastAcct
		}
	}
	g.lastAcct = now
}

// reschedule brings the device to a consistent state at the current virtual
// time: it integrates elapsed work, retires finished kernels (starting queued
// successors), recomputes SM allocations and contention slowdowns, and arms
// the next completion event. It must be called whenever the runnable set
// changes (enqueue, pause, resume) and on every completion event.
//
// Completion callbacks run only after the device state is consistent, so they
// may freely enqueue further kernels (which re-enters reschedule).
func (g *GPU) reschedule() {
	g.advance()

	// Take the shared buffers for this pass; completion callbacks re-enter
	// reschedule, so nested passes must not see them (they allocate fresh
	// ones on first use instead). Both are handed back before the callbacks
	// run, once this pass no longer touches them.
	callbacks := g.cbBuf[:0]
	g.cbBuf = nil
	execBuf := g.execBuf
	g.execBuf = nil

	var execs []*exec
	for {
		execs = g.runningExecs(execBuf)
		execBuf = execs
		g.assignRates(execs)
		finished := false
		for _, e := range execs {
			if e.remaining <= 0.5 {
				e.q.run = nil
				g.kernelsDone++
				if len(g.tracers) > 0 {
					avg := 0.0
					if dur := g.eng.Now() - e.started; dur > 0 {
						avg = e.allocIntg / float64(dur)
					}
					for _, t := range g.tracers {
						t.KernelEnd(g.eng.Now(), e.q, e.rec.k, avg)
					}
				}
				if e.rec.onDone != nil {
					callbacks = append(callbacks, e.rec)
				}
				finished = true
				g.freeExec(e)
			}
		}
		if !finished {
			break
		}
	}

	// Record whether any compute kernel is running, for busy-time accounting.
	g.lastAnyBusy = false
	for _, e := range execs {
		if e.rec.k.IsCompute() {
			g.lastAnyBusy = true
			break
		}
	}

	g.armCompletion()
	g.execBuf = execBuf[:0] // last use of execs: hand the buffer back

	// With the device in a consistent state, publish the new allocation
	// picture before completion callbacks run (they may re-enter reschedule
	// and publish again at the same instant — a zero-width interval).
	g.publishAllocations()

	for _, rec := range callbacks {
		rec.onDone(g.eng.Now())
	}
	g.cbBuf = callbacks[:0]
}

// rescheduleLight is the coalescing fast path for events that provably leave
// the runnable set and every rate unchanged: an enqueue onto a busy or paused
// queue, pausing/resuming a queue that cannot dispatch, or dropping pending
// kernels. Recomputing allocations would reproduce the exact same values, so
// the pass skips runningExecs/assignRates entirely — but it must remain
// bit-identical to the full pass in every observable: it integrates elapsed
// work at the same instants (floating-point trajectories are digest-visible),
// re-arms the completion event with the same arithmetic (consuming exactly
// one engine sequence number, like the full pass), and publishes the same
// allocation snapshot. A literal "defer the reschedule behind a dirty flag"
// would drop snapshots and shift event sequence numbers, moving determinism
// digests; this formulation coalesces the O(queues * kernels) recomputation
// while replaying the event-schedule side effects exactly.
func (g *GPU) rescheduleLight() {
	g.advance()
	// If any in-flight kernel has already crossed the retirement threshold,
	// the full pass must retire it (and start successors) now.
	for _, q := range g.queues {
		if e := q.run; e != nil && e.remaining <= 0.5 {
			g.reschedule() // advance again is a no-op (dt = 0)
			return
		}
	}
	// The runnable set is unchanged, so lastAnyBusy keeps its value.
	g.armCompletion()
	g.publishAllocations()
}

// armCompletion cancels and re-arms the earliest next completion event from
// the running kernels (in queue order, matching the full pass's exec order).
func (g *GPU) armCompletion() {
	if g.completion != nil {
		g.completion.Cancel()
		g.completion = nil
	}
	next := Time(math.MaxInt64)
	for _, q := range g.queues {
		e := q.run
		if e == nil || e.rate <= 0 {
			continue
		}
		d := Time(math.Ceil(e.remaining / e.rate))
		if d < 1 {
			d = 1
		}
		if g.eng.Now()+d < next {
			next = g.eng.Now() + d
		}
	}
	if next != Time(math.MaxInt64) {
		if g.onCompletion == nil {
			g.onCompletion = func() {
				g.completion = nil
				g.reschedule()
			}
		}
		g.completion = g.eng.Schedule(next, g.onCompletion)
	}
}

// publishAllocations snapshots every queue's load to allocation tracers.
func (g *GPU) publishAllocations() {
	if len(g.allocTracers) == 0 {
		return
	}
	g.loadBuf = g.Loads(g.loadBuf)
	for _, t := range g.allocTracers {
		t.AllocationsChanged(g.eng.Now(), g.loadBuf)
	}
}

// ctxGroup is assignRates scratch: one context's kernels within a priority
// tier, as a contiguous [start,end) range of the tier slice after the group
// sort, with the context's summed SM demand.
type ctxGroup struct {
	ctx    *Context
	start  int
	end    int
	demand float64
}

// insertionSortByPrioDesc stable-sorts execs by context priority, highest
// first, preserving original order among equal priorities (moves only on a
// strict comparison). Tiers are tiny and the hot path must not allocate, so
// an insertion sort beats sort.SliceStable's closure and reflection costs.
func insertionSortByPrioDesc(a []*exec) {
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && a[j].q.ctx.Priority < e.q.ctx.Priority {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}

// insertionSortByGroup stable-sorts a tier range by group rank, making each
// context's kernels contiguous while preserving their relative order.
func insertionSortByGroup(a []*exec) {
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && a[j].grpIdx > e.grpIdx {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}

// assignRates computes, for the current runnable set, each kernel's SM
// allocation (priority tiers, per-context caps, proportional sharing of the
// remainder) and contention slowdown, then each memcpy's PCIe share.
//
// The pass is allocation-free in steady state: partitioning, tier ordering
// and per-context grouping run over buffers reused across passes. Ordering
// works on a copy (tierBuf) so the bandwidth loops below still walk kernels
// in original queue order — floating-point accumulation order is visible in
// determinism digests — and the stable sorts reproduce exactly the first-
// appearance grouping of the map-based formulation they replace.
func (g *GPU) assignRates(execs []*exec) {
	compute := g.computeBuf[:0]
	dma := g.dmaBuf[:0]
	for _, e := range execs {
		if e.rec.k.IsCompute() {
			compute = append(compute, e)
		} else {
			dma = append(dma, e)
		}
	}

	// --- SM allocation ---
	// Order a copy of the compute set by priority tier, highest first.
	tier := append(g.tierBuf[:0], compute...)
	insertionSortByPrioDesc(tier)

	// Within each priority tier, SMs are assigned by hierarchical max-min
	// fairness, modeling the hardware scheduler's fair block dispatch across
	// equal-priority device queues (paper footnote 1): a context with a
	// small (restricted) demand keeps its full share while unrestricted
	// kernels expand into whatever capacity is left — the property the
	// Semi-SP execution mode (§4.4.1) relies on.
	available := float64(g.cfg.SMs)
	groups := g.groupBuf[:0]
	for lo := 0; lo < len(tier); {
		hi := lo + 1
		for hi < len(tier) && tier[hi].q.ctx.Priority == tier[lo].q.ctx.Priority {
			hi++
		}
		// Group kernels by context (first-appearance order): the context's
		// demand is the sum of its kernels' demands, capped by its SM limit.
		groups = groups[:0]
		for _, e := range tier[lo:hi] {
			gi := -1
			for i := range groups {
				if groups[i].ctx == e.q.ctx {
					gi = i
					break
				}
			}
			if gi < 0 {
				gi = len(groups)
				groups = append(groups, ctxGroup{ctx: e.q.ctx})
			}
			e.grpIdx = gi
			e.demand = float64(e.rec.k.SMDemand(e.q.ctx.SMLimit, g.cfg.SMs))
			groups[gi].demand += e.demand
		}
		insertionSortByGroup(tier[lo:hi])
		pos := lo
		for i := range groups {
			groups[i].start = pos
			for pos < hi && tier[pos].grpIdx == i {
				pos++
			}
			groups[i].end = pos
		}

		demands := g.demandBuf[:0]
		for i := range groups {
			d := groups[i].demand
			if groups[i].ctx.SMLimit > 0 && d > float64(groups[i].ctx.SMLimit) {
				d = float64(groups[i].ctx.SMLimit)
			}
			demands = append(demands, d)
		}
		g.demandBuf = demands
		var grants []float64
		grants, g.unsatBuf = waterFillInto(g.grantBuf, demands, available, g.unsatBuf)
		g.grantBuf = grants
		granted := 0.0
		for i := range groups {
			granted += grants[i]
			// Within the context, max-min across its kernels.
			kd := g.kdBuf[:0]
			for _, e := range tier[groups[i].start:groups[i].end] {
				kd = append(kd, float64(e.rec.k.SMDemand(e.q.ctx.SMLimit, g.cfg.SMs)))
			}
			g.kdBuf = kd
			var kg []float64
			kg, g.unsatBuf = waterFillInto(g.kgBuf, kd, grants[i], g.unsatBuf)
			g.kgBuf = kg
			for j, e := range tier[groups[i].start:groups[i].end] {
				e.alloc = kg[j]
			}
		}
		available -= granted
		if available < 0 {
			available = 0
		}
		lo = hi
	}

	// --- Bandwidth contention ---
	// Shared pool: all non-isolated contexts contend on budget 1.0. Each
	// isolated context has a private budget proportional to its SM share,
	// accumulated in isoBuf by context ID (only touched entries are zeroed).
	if n := len(g.contexts); cap(g.isoBuf) < n {
		g.isoBuf = make([]float64, n)
	} else {
		g.isoBuf = g.isoBuf[:n]
	}
	for _, e := range compute {
		if e.q.ctx.Isolated {
			g.isoBuf[e.q.ctx.id] = 0
		}
	}
	sharedDemand := 0.0
	for _, e := range compute {
		d := e.demandBW(g.cfg.BWSatOccupancy)
		if e.q.ctx.Isolated {
			g.isoBuf[e.q.ctx.id] += d
		} else {
			sharedDemand += d
		}
	}
	for _, e := range compute {
		var over float64
		if e.q.ctx.Isolated {
			budget := float64(e.q.ctx.SMLimit) / float64(g.cfg.SMs)
			if budget <= 0 {
				budget = 1
			}
			over = g.isoBuf[e.q.ctx.id]/budget - 1
		} else {
			over = sharedDemand - 1
		}
		slow := 1.0
		if over > 0 {
			slow = 1 + e.rec.k.MemIntensity*over
		}
		// Co-residency penalty: when this kernel's SM scope overlaps other
		// kernels' (either side unrestricted) and the combined demand
		// oversubscribes the device, block interleaving thrashes shared
		// resources. Strictly partitioned (restricted or MIG) contexts on
		// disjoint SM sets never pay this — the asymmetry that makes
		// controlled spatial sharing (§3.3) profitable.
		if beta := g.cfg.InterferenceBeta; beta > 0 && e.alloc > 0 {
			overlapDemand := e.demand
			for _, o := range compute {
				if o == e || o.alloc <= 0 {
					continue // starved kernels occupy no SMs, no thrash
				}
				if e.q.ctx.SMLimit == 0 || o.q.ctx.SMLimit == 0 {
					overlapDemand += o.demand
				}
			}
			if oversub := (overlapDemand - float64(g.cfg.SMs)) / float64(g.cfg.SMs); oversub > 0 {
				slow *= 1 + beta*oversub
			}
		}
		if slow > g.cfg.SlowdownCap {
			slow = g.cfg.SlowdownCap
		}
		e.rate = e.alloc / slow
	}

	// --- PCIe sharing ---
	if n := len(dma); n > 0 {
		share := g.cfg.PCIeBytesPerNS / float64(n)
		for _, e := range dma {
			e.rate = share
			e.alloc = 0
		}
	}

	// Hand the partition/ordering buffers back for the next pass.
	g.computeBuf = compute[:0]
	g.dmaBuf = dma[:0]
	g.tierBuf = tier[:0]
	g.groupBuf = groups[:0]
}

// waterFill distributes capacity across demands by max-min fairness: demands
// at or below the fair share are fully satisfied; the remainder is split
// equally among the rest. The returned grants sum to min(capacity,
// sum(demands)). This allocating form is the reference used by tests; the
// hot path calls waterFillInto with reused scratch.
func waterFill(demands []float64, capacity float64) []float64 {
	grants, _ := waterFillInto(make([]float64, len(demands)), demands, capacity, nil)
	return grants
}

// waterFillInto is waterFill over caller-provided scratch: grants receives
// one grant per demand (grown only if under-capacity) and unsat is the
// round-robin worklist. Both are returned for reuse. The arithmetic is
// identical to the allocating form — the grants are bit-for-bit the same,
// which determinism digests depend on.
func waterFillInto(grants, demands []float64, capacity float64, unsat []int) ([]float64, []int) {
	if cap(grants) < len(demands) {
		grants = make([]float64, len(demands))
	} else {
		grants = grants[:len(demands)]
		for i := range grants {
			grants[i] = 0
		}
	}
	if capacity <= 0 {
		return grants, unsat
	}
	unsat = unsat[:0]
	for i := range demands {
		unsat = append(unsat, i)
	}
	remaining := capacity
	for len(unsat) > 0 {
		share := remaining / float64(len(unsat))
		progressed := false
		next := unsat[:0]
		for _, i := range unsat {
			if demands[i] <= share {
				grants[i] = demands[i]
				remaining -= demands[i]
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		unsat = next
		if !progressed {
			// All remaining demands exceed the fair share: split equally.
			share = remaining / float64(len(unsat))
			for _, i := range unsat {
				grants[i] = share
			}
			break
		}
	}
	return grants, unsat
}

// demandBW is the kernel's bandwidth demand at its current allocation:
// intensity scaled by achieved occupancy, with a saturation knee — the
// kernel reaches its full bandwidth demand at BWSatOccupancy of its
// saturation SM count (memory-bound kernels saturate the bus early).
func (e *exec) demandBW(satOcc float64) float64 {
	sat := float64(e.rec.k.SaturationSMs)
	if sat <= 0 {
		return 0
	}
	if satOcc > 0 && satOcc < 1 {
		sat *= satOcc
	}
	f := e.alloc / sat
	if f > 1 {
		f = 1
	}
	return e.rec.k.MemIntensity * f
}

// Stats is a snapshot of device accounting.
type Stats struct {
	// KernelsCompleted counts retired kernels.
	KernelsCompleted int64
	// BusySMTime is the integral of allocated compute SMs over time, in
	// SM-nanoseconds. Divide by (SMs x elapsed) for average utilization.
	BusySMTime float64
	// AnyBusyTime is the total time at least one compute kernel was running.
	AnyBusyTime Time
}

// Stats returns accounting integrated up to the current virtual time.
func (g *GPU) Stats() Stats {
	g.advance()
	return Stats{
		KernelsCompleted: g.kernelsDone,
		BusySMTime:       g.busySMIntegral,
		AnyBusyTime:      g.anyBusyTime,
	}
}

// Utilization returns average SM utilization in [0,1] over the elapsed
// virtual time window [0, now].
func (g *GPU) Utilization() float64 {
	now := g.eng.Now()
	if now == 0 {
		return 0
	}
	s := g.Stats()
	return s.BusySMTime / (float64(g.cfg.SMs) * float64(now))
}

// ActiveSMs returns the number of SMs allocated to running compute kernels
// at this instant — instantaneous occupancy for timeline introspection.
func (g *GPU) ActiveSMs() float64 {
	total := 0.0
	for _, q := range g.queues {
		if q.run != nil && q.run.rec.k.IsCompute() {
			total += q.run.alloc
		}
	}
	return total
}

// Quiescent reports whether no queue holds running or pending kernels.
func (g *GPU) Quiescent() bool {
	for _, q := range g.queues {
		if !q.Idle() {
			return false
		}
	}
	return true
}
