package sim

import "fmt"

// KernelKind distinguishes compute kernels (run on SMs) from memory
// management kernels (run on the DMA engine over PCIe).
type KernelKind int

const (
	// Compute kernels execute thread blocks on SMs.
	Compute KernelKind = iota
	// MemcpyH2D transfers bytes host-to-device over PCIe.
	MemcpyH2D
	// MemcpyD2H transfers bytes device-to-host over PCIe.
	MemcpyD2H
)

// String returns the kind mnemonic.
func (k KernelKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case MemcpyH2D:
		return "h2d"
	case MemcpyD2H:
		return "d2h"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

// Kernel describes one GPU kernel using a fluid ("roofline-style") execution
// model: the kernel carries Work nanoseconds of single-SM compute and scales
// linearly with the number of SMs granted to it, saturating at SaturationSMs
// (the point where it cannot occupy more SMs — the paper's d% statistic).
//
// The isolated duration on s SMs is therefore
//
//	t(s) = Work / min(s, SaturationSMs)
//
// which is the observable the offline profiler records at each MPS partition
// and the observable both kernel-squad performance estimators consume (§4.4).
//
// MemIntensity in [0,1] is the fraction of device memory bandwidth the kernel
// demands when running at full occupancy; it drives the contention model (the
// kernel-level slowdown of Fig 9, capped at 2x).
type Kernel struct {
	// Name identifies the kernel for traces and debugging, e.g. "conv2d_3".
	Name string
	// Kind selects compute vs. DMA execution.
	Kind KernelKind
	// Work is the total compute demand in single-SM nanoseconds. A kernel
	// with Work = 108000ns saturating 108 SMs runs 1000ns in isolation on a
	// full A100. Ignored for memcpy kernels.
	Work Time
	// SaturationSMs is the maximum number of SMs the kernel can occupy
	// (limited by its thread-block count and per-SM occupancy). Must be >= 1
	// for compute kernels.
	SaturationSMs int
	// MemIntensity is the memory-bandwidth demand fraction in [0,1] at full
	// occupancy. 0 = pure compute; 1 = fully bandwidth-bound.
	MemIntensity float64
	// Bytes is the transfer size for memcpy kernels; ignored for compute.
	Bytes int64
	// TensorCore records whether the kernel uses tensor cores. It does not
	// change the execution model but is tracked because the paper notes the
	// application mix (BERT inference uses tensor cores) and the deployment
	// checks inspect kernel duration heterogeneity.
	TensorCore bool
}

// Validate reports a descriptive error if the kernel parameters are
// inconsistent (non-positive work, zero saturation, out-of-range intensity).
func (k *Kernel) Validate() error {
	switch k.Kind {
	case Compute:
		if k.Work <= 0 {
			return fmt.Errorf("sim: kernel %q: Work must be positive, got %d", k.Name, k.Work)
		}
		if k.SaturationSMs < 1 {
			return fmt.Errorf("sim: kernel %q: SaturationSMs must be >= 1, got %d", k.Name, k.SaturationSMs)
		}
	case MemcpyH2D, MemcpyD2H:
		if k.Bytes <= 0 {
			return fmt.Errorf("sim: kernel %q: memcpy Bytes must be positive, got %d", k.Name, k.Bytes)
		}
	default:
		return fmt.Errorf("sim: kernel %q: unknown kind %d", k.Name, int(k.Kind))
	}
	if k.MemIntensity < 0 || k.MemIntensity > 1 {
		return fmt.Errorf("sim: kernel %q: MemIntensity must be in [0,1], got %g", k.Name, k.MemIntensity)
	}
	return nil
}

// IsolatedDuration returns the kernel's contention-free duration when granted
// sms SMs (for compute kernels) or the full PCIe bandwidth bytesPerNS (for
// memcpy kernels, pass the GPU's configured bandwidth).
func (k *Kernel) IsolatedDuration(sms int, bytesPerNS float64) Time {
	switch k.Kind {
	case Compute:
		if sms < 1 {
			sms = 1
		}
		eff := sms
		if eff > k.SaturationSMs {
			eff = k.SaturationSMs
		}
		d := Time((float64(k.Work) + float64(eff) - 1) / float64(eff))
		if d < 1 {
			d = 1
		}
		return d
	default:
		d := Time(float64(k.Bytes) / bytesPerNS)
		if d < 1 {
			d = 1
		}
		return d
	}
}

// IsCompute reports whether the kernel runs on SMs.
func (k *Kernel) IsCompute() bool { return k.Kind == Compute }

// SMDemand returns the number of SMs the kernel wants when the owning context
// caps it at limit SMs (limit <= 0 means unrestricted with total device SMs
// given by deviceSMs).
func (k *Kernel) SMDemand(limit, deviceSMs int) int {
	max := deviceSMs
	if limit > 0 && limit < max {
		max = limit
	}
	if k.SaturationSMs < max {
		return k.SaturationSMs
	}
	return max
}
