package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testGPU builds an engine + default-config GPU pair for tests.
func testGPU(t testing.TB) (*Engine, *GPU) {
	t.Helper()
	eng := NewEngine()
	return eng, NewGPU(eng, DefaultConfig())
}

// mustCtx creates a context, failing the test on error.
func mustCtx(t testing.TB, g *GPU, opts ContextOptions) *Context {
	t.Helper()
	opts.NoMemCharge = true
	c, err := g.NewContext(opts)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	return c
}

func computeKernel(work Time, sat int, mem float64) *Kernel {
	return &Kernel{Name: "k", Kind: Compute, Work: work, SaturationSMs: sat, MemIntensity: mem}
}

func TestSingleKernelFullGPU(t *testing.T) {
	eng, g := testGPU(t)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	var done Time
	// 108000 SM*us of work saturating 108 SMs -> 1000us isolated.
	q.Enqueue(0, computeKernel(108000*Microsecond, 108, 0), func(at Time) { done = at })
	eng.Run()
	if done != 1000*Microsecond {
		t.Errorf("completion at %v, want 1ms", done)
	}
}

func TestSMLimitSlowsKernel(t *testing.T) {
	eng, g := testGPU(t)
	q := mustCtx(t, g, ContextOptions{SMLimit: 54}).NewQueue("q")
	var done Time
	q.Enqueue(0, computeKernel(108000*Microsecond, 108, 0), func(at Time) { done = at })
	eng.Run()
	if done != 2000*Microsecond {
		t.Errorf("completion at %v with 54/108 SMs, want 2ms", done)
	}
}

func TestQueueSerializesKernels(t *testing.T) {
	eng, g := testGPU(t)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	var ends []Time
	for i := 0; i < 3; i++ {
		q.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { ends = append(ends, at) })
	}
	eng.Run()
	if len(ends) != 3 {
		t.Fatalf("%d kernels completed, want 3", len(ends))
	}
	for i, want := range []Time{Millisecond, 2 * Millisecond, 3 * Millisecond} {
		if ends[i] != want {
			t.Errorf("kernel %d finished at %v, want %v (serialization within a queue)", i, ends[i], want)
		}
	}
}

func TestCrossQueueConcurrency(t *testing.T) {
	eng, g := testGPU(t)
	// Two contexts, 54 SMs each: both kernels fit side by side.
	q1 := mustCtx(t, g, ContextOptions{SMLimit: 54}).NewQueue("q1")
	q2 := mustCtx(t, g, ContextOptions{SMLimit: 54}).NewQueue("q2")
	var e1, e2 Time
	q1.Enqueue(0, computeKernel(54*Millisecond, 108, 0), func(at Time) { e1 = at })
	q2.Enqueue(0, computeKernel(54*Millisecond, 108, 0), func(at Time) { e2 = at })
	eng.Run()
	// Each runs on its own 54 SMs: 54ms work / 54 SMs = 1ms, concurrently.
	if e1 != Millisecond || e2 != Millisecond {
		t.Errorf("completions at %v, %v; want both 1ms (spatial concurrency)", e1, e2)
	}
}

func TestUnrestrictedContention(t *testing.T) {
	eng := NewEngine()
	cfg := DefaultConfig()
	cfg.InterferenceBeta = 0 // isolate pure SM-sharing math
	g := NewGPU(eng, cfg)
	// Two unrestricted kernels each saturating the whole device: the
	// hardware scheduler splits SMs fairly, so each takes 2x isolated time.
	q1 := mustCtx(t, g, ContextOptions{}).NewQueue("q1")
	q2 := mustCtx(t, g, ContextOptions{}).NewQueue("q2")
	var e1, e2 Time
	q1.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { e1 = at })
	q2.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { e2 = at })
	eng.Run()
	if e1 != 2*Millisecond || e2 != 2*Millisecond {
		t.Errorf("completions at %v, %v; want both 2ms (fair SM sharing)", e1, e2)
	}
}

func TestUnboundedCoResidencyPenalty(t *testing.T) {
	eng, g := testGPU(t)
	// With the default interference model, two fully-saturating unrestricted
	// kernels oversubscribe the device 2x: each is slowed by 1+beta (the
	// uncontrolled interleaving of Fig 3b).
	q1 := mustCtx(t, g, ContextOptions{}).NewQueue("q1")
	q2 := mustCtx(t, g, ContextOptions{}).NewQueue("q2")
	var e1 Time
	q1.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { e1 = at })
	q2.Enqueue(0, computeKernel(108*Millisecond, 108, 0), nil)
	eng.Run()
	beta := g.Config().InterferenceBeta
	want := Time(float64(2*Millisecond) * (1 + beta))
	if diff := e1 - want; diff < -10*Microsecond || diff > 10*Microsecond {
		t.Errorf("penalized completion at %v, want ~%v (2ms x (1+%.2f))", e1, want, beta)
	}
}

func TestSpatialPartitionsAvoidCoResidencyPenalty(t *testing.T) {
	eng, g := testGPU(t)
	// The same pair under strict 54/54 spatial partitioning pays no
	// co-residency penalty — only the (zero here) bandwidth term.
	q1 := mustCtx(t, g, ContextOptions{SMLimit: 54}).NewQueue("q1")
	q2 := mustCtx(t, g, ContextOptions{SMLimit: 54}).NewQueue("q2")
	var e1 Time
	q1.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { e1 = at })
	q2.Enqueue(0, computeKernel(108*Millisecond, 108, 0), nil)
	eng.Run()
	if e1 != 2*Millisecond {
		t.Errorf("partitioned completion at %v, want exactly 2ms (no penalty)", e1)
	}
}

func TestSmallKernelsCoexistWithoutSlowdown(t *testing.T) {
	eng, g := testGPU(t)
	// Kernels saturating 50 SMs each: 100 <= 108, no contention at all.
	q1 := mustCtx(t, g, ContextOptions{}).NewQueue("q1")
	q2 := mustCtx(t, g, ContextOptions{}).NewQueue("q2")
	var e1, e2 Time
	q1.Enqueue(0, computeKernel(50*Millisecond, 50, 0), func(at Time) { e1 = at })
	q2.Enqueue(0, computeKernel(50*Millisecond, 50, 0), func(at Time) { e2 = at })
	eng.Run()
	if e1 != Millisecond || e2 != Millisecond {
		t.Errorf("completions at %v, %v; want both 1ms (no contention below capacity)", e1, e2)
	}
}

func TestPriorityPreemptsSMShare(t *testing.T) {
	eng, g := testGPU(t)
	rt := mustCtx(t, g, ContextOptions{Priority: 1}).NewQueue("rt")
	be := mustCtx(t, g, ContextOptions{}).NewQueue("be")
	var eRT, eBE Time
	rt.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { eRT = at })
	be.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { eBE = at })
	eng.Run()
	if eRT != Millisecond {
		t.Errorf("real-time kernel finished at %v, want 1ms (takes all SMs first)", eRT)
	}
	// BE got 0 SMs for 1ms, then the full device for its whole work: 2ms total.
	if eBE != 2*Millisecond {
		t.Errorf("best-effort kernel finished at %v, want 2ms", eBE)
	}
}

func TestBandwidthInterferenceSlowdown(t *testing.T) {
	eng, g := testGPU(t)
	// Two fully memory-bound kernels, each demanding the whole bandwidth:
	// total demand 2.0, overshoot 1.0, slowdown = 1 + 1.0*1.0 = 2x each,
	// capped at 2. Each has its own 54 SMs so no SM contention.
	q1 := mustCtx(t, g, ContextOptions{SMLimit: 54}).NewQueue("q1")
	q2 := mustCtx(t, g, ContextOptions{SMLimit: 54}).NewQueue("q2")
	var e1 Time
	q1.Enqueue(0, &Kernel{Name: "m1", Kind: Compute, Work: 54 * Millisecond, SaturationSMs: 54, MemIntensity: 1}, func(at Time) { e1 = at })
	q2.Enqueue(0, &Kernel{Name: "m2", Kind: Compute, Work: 54 * Millisecond, SaturationSMs: 54, MemIntensity: 1}, nil)
	eng.Run()
	if e1 != 2*Millisecond {
		t.Errorf("memory-bound pair finished at %v, want 2ms (2x slowdown)", e1)
	}
}

func TestSlowdownCapAtTwo(t *testing.T) {
	eng, g := testGPU(t)
	// Four fully memory-bound kernels: raw overshoot 3.0 would imply 4x
	// slowdown; the cap per Fig 9(a) holds it at 2x.
	var last Time
	for i := 0; i < 4; i++ {
		q := mustCtx(t, g, ContextOptions{SMLimit: 27}).NewQueue("q")
		q.Enqueue(0, &Kernel{Name: "m", Kind: Compute, Work: 27 * Millisecond, SaturationSMs: 27, MemIntensity: 1}, func(at Time) { last = at })
	}
	eng.Run()
	if last != 2*Millisecond {
		t.Errorf("capped slowdown finish at %v, want 2ms", last)
	}
}

func TestComputeBoundUnaffectedByMemoryPressure(t *testing.T) {
	eng, g := testGPU(t)
	q1 := mustCtx(t, g, ContextOptions{SMLimit: 54}).NewQueue("q1")
	q2 := mustCtx(t, g, ContextOptions{SMLimit: 54}).NewQueue("q2")
	var eCompute Time
	q1.Enqueue(0, &Kernel{Name: "c", Kind: Compute, Work: 54 * Millisecond, SaturationSMs: 54, MemIntensity: 0}, func(at Time) { eCompute = at })
	q2.Enqueue(0, &Kernel{Name: "m", Kind: Compute, Work: 540 * Millisecond, SaturationSMs: 54, MemIntensity: 1}, nil)
	eng.Run()
	if eCompute != Millisecond {
		t.Errorf("pure-compute kernel finished at %v under memory pressure, want 1ms", eCompute)
	}
}

func TestIsolatedContextAvoidsInterference(t *testing.T) {
	eng, g := testGPU(t)
	// MIG-style: two isolated halves, both memory-bound. Each has a private
	// bandwidth slice of 0.5 and demands 1.0 x (54/54) = 1.0 against budget
	// 0.5 -> overshoot 1.0 -> slowdown 2x... but relative to its own slice.
	// The MIG model gives each partition bandwidth proportional to SMs, so
	// two identical memory-bound kernels see the same 2x as the shared pool
	// when both run; the difference appears when only one runs: the shared
	// pool gives it full bandwidth, MIG still caps it at its slice.
	q1 := mustCtx(t, g, ContextOptions{SMLimit: 54, Isolated: true}).NewQueue("q1")
	var e1 Time
	q1.Enqueue(0, &Kernel{Name: "m1", Kind: Compute, Work: 54 * Millisecond, SaturationSMs: 54, MemIntensity: 1}, func(at Time) { e1 = at })
	eng.Run()
	// Alone in its isolated half: demand 1.0 vs budget 0.5 -> slowdown 2x.
	if e1 != 2*Millisecond {
		t.Errorf("isolated memory-bound solo finished at %v, want 2ms (bandwidth slice)", e1)
	}
}

func TestMemcpyKernels(t *testing.T) {
	eng, g := testGPU(t)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	var done Time
	// 25 MB at 25 B/ns = 1ms.
	q.Enqueue(0, &Kernel{Name: "h2d", Kind: MemcpyH2D, Bytes: 25 << 20}, func(at Time) { done = at })
	eng.Run()
	want := Time(float64(25<<20) / 25.0)
	if done != want {
		t.Errorf("memcpy finished at %v, want %v", done, want)
	}
}

func TestMemcpyPCIeContention(t *testing.T) {
	eng, g := testGPU(t)
	q1 := mustCtx(t, g, ContextOptions{}).NewQueue("q1")
	q2 := mustCtx(t, g, ContextOptions{}).NewQueue("q2")
	var e1, e2 Time
	q1.Enqueue(0, &Kernel{Name: "a", Kind: MemcpyH2D, Bytes: 25_000_000}, func(at Time) { e1 = at })
	q2.Enqueue(0, &Kernel{Name: "b", Kind: MemcpyD2H, Bytes: 25_000_000}, func(at Time) { e2 = at })
	eng.Run()
	// Each would take 1ms alone; sharing PCIe halves the rate: 2ms.
	if e1 != 2*Millisecond || e2 != 2*Millisecond {
		t.Errorf("concurrent memcpys finished at %v, %v; want 2ms each", e1, e2)
	}
}

func TestMemcpyDoesNotOccupySMs(t *testing.T) {
	eng, g := testGPU(t)
	qc := mustCtx(t, g, ContextOptions{}).NewQueue("qc")
	qm := mustCtx(t, g, ContextOptions{}).NewQueue("qm")
	var eC Time
	qc.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { eC = at })
	qm.Enqueue(0, &Kernel{Name: "m", Kind: MemcpyH2D, Bytes: 50_000_000}, nil)
	eng.Run()
	if eC != Millisecond {
		t.Errorf("compute kernel finished at %v while DMA active, want 1ms", eC)
	}
}

func TestPauseResume(t *testing.T) {
	eng, g := testGPU(t)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	q.Pause()
	var done Time
	q.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { done = at })
	eng.Schedule(5*Millisecond, q.Resume)
	eng.Run()
	if done != 6*Millisecond {
		t.Errorf("paused-queue kernel finished at %v, want 6ms (5ms pause + 1ms run)", done)
	}
}

func TestPauseDoesNotPreemptRunningKernel(t *testing.T) {
	eng, g := testGPU(t)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	var first, second Time
	q.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { first = at })
	q.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { second = at })
	eng.Schedule(500*Microsecond, q.Pause)
	eng.Schedule(10*Millisecond, q.Resume)
	eng.Run()
	if first != Millisecond {
		t.Errorf("running kernel finished at %v despite pause, want 1ms (non-preemptable)", first)
	}
	if second != 11*Millisecond {
		t.Errorf("second kernel finished at %v, want 11ms (held until resume)", second)
	}
}

func TestContextSumCap(t *testing.T) {
	eng, g := testGPU(t)
	// Two queues in ONE context capped at 54 SMs: their combined use must
	// respect the cap, so each gets 27 SMs.
	ctx := mustCtx(t, g, ContextOptions{SMLimit: 54})
	q1, q2 := ctx.NewQueue("q1"), ctx.NewQueue("q2")
	var e1 Time
	q1.Enqueue(0, computeKernel(27*Millisecond, 108, 0), func(at Time) { e1 = at })
	q2.Enqueue(0, computeKernel(27*Millisecond, 108, 0), nil)
	eng.Run()
	if e1 != Millisecond {
		t.Errorf("finished at %v, want 1ms (27 SMs each under shared 54-SM cap)", e1)
	}
}

func TestDeferredEnqueue(t *testing.T) {
	eng, g := testGPU(t)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	var done Time
	q.Enqueue(3*Microsecond, computeKernel(108*Millisecond, 108, 0), func(at Time) { done = at })
	eng.Run()
	if done != Millisecond+3*Microsecond {
		t.Errorf("deferred-launch kernel finished at %v, want 1.003ms", done)
	}
}

func TestMemoryAccounting(t *testing.T) {
	eng := NewEngine()
	cfg := DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	g := NewGPU(eng, cfg)
	if err := g.AllocMemory(1 << 29); err != nil {
		t.Fatalf("first alloc: %v", err)
	}
	if err := g.AllocMemory(1 << 29); err != nil {
		t.Fatalf("second alloc: %v", err)
	}
	if err := g.AllocMemory(1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("over-capacity alloc error = %v, want ErrOutOfMemory", err)
	}
	g.FreeMemory(1 << 29)
	if err := g.AllocMemory(1 << 28); err != nil {
		t.Errorf("alloc after free: %v", err)
	}
	if g.MemUsed() != (1<<29)+(1<<28) {
		t.Errorf("MemUsed = %d", g.MemUsed())
	}
}

func TestContextCreationChargesMemory(t *testing.T) {
	eng := NewEngine()
	cfg := DefaultConfig()
	cfg.MemoryBytes = 300 << 20 // room for exactly one 230MB context
	g := NewGPU(eng, cfg)
	if _, err := g.NewContext(ContextOptions{Label: "a"}); err != nil {
		t.Fatalf("first context: %v", err)
	}
	if _, err := g.NewContext(ContextOptions{Label: "b"}); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("second context error = %v, want ErrOutOfMemory", err)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	eng, g := testGPU(t)
	q := mustCtx(t, g, ContextOptions{SMLimit: 54}).NewQueue("q")
	q.Enqueue(0, computeKernel(54*Millisecond, 108, 0), nil) // 1ms on 54 SMs
	eng.Run()
	// 54 SM*ms busy over 1ms elapsed on a 108-SM device = 50%.
	if u := g.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %g, want 0.5", u)
	}
	st := g.Stats()
	if st.KernelsCompleted != 1 {
		t.Errorf("KernelsCompleted = %d, want 1", st.KernelsCompleted)
	}
	if st.AnyBusyTime != Millisecond {
		t.Errorf("AnyBusyTime = %v, want 1ms", st.AnyBusyTime)
	}
}

func TestQuiescent(t *testing.T) {
	eng, g := testGPU(t)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	if !g.Quiescent() {
		t.Error("fresh GPU not quiescent")
	}
	q.Enqueue(0, computeKernel(Millisecond, 1, 0), nil)
	if g.Quiescent() {
		t.Error("GPU with pending kernel reported quiescent")
	}
	eng.Run()
	if !g.Quiescent() {
		t.Error("drained GPU not quiescent")
	}
}

func TestInvalidContextOptions(t *testing.T) {
	eng, g := testGPU(t)
	_ = eng
	if _, err := g.NewContext(ContextOptions{SMLimit: -1, NoMemCharge: true}); err == nil {
		t.Error("negative SMLimit accepted")
	}
	if _, err := g.NewContext(ContextOptions{SMLimit: 109, NoMemCharge: true}); err == nil {
		t.Error("SMLimit beyond device accepted")
	}
}

func TestEnqueueInvalidKernelPanics(t *testing.T) {
	_, g := testGPU(t)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	defer func() {
		if recover() == nil {
			t.Error("enqueue of invalid kernel did not panic")
		}
	}()
	q.Enqueue(0, &Kernel{Name: "bad", Kind: Compute, Work: 0, SaturationSMs: 0}, nil)
}

// Property: every enqueued kernel completes exactly once, completions are
// FIFO per queue, and total completed work is conserved regardless of random
// arrival patterns and context limits.
func TestExecutionConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := NewEngine()
		g := NewGPU(eng, DefaultConfig())
		nq := 1 + rng.Intn(4)
		type record struct {
			order []int
			count int
		}
		recs := make([]record, nq)
		queues := make([]*Queue, nq)
		for i := range queues {
			limit := 0
			if rng.Intn(2) == 0 {
				limit = 6 * (1 + rng.Intn(18))
				if limit > 108 {
					limit = 108
				}
			}
			c, err := g.NewContext(ContextOptions{SMLimit: limit, NoMemCharge: true})
			if err != nil {
				return false
			}
			queues[i] = c.NewQueue("q")
		}
		total := 0
		for i := 0; i < nq; i++ {
			n := 1 + rng.Intn(8)
			total += n
			recs[i].count = n
			for j := 0; j < n; j++ {
				j := j
				i := i
				k := &Kernel{
					Name:          "k",
					Kind:          Compute,
					Work:          Time(1+rng.Intn(1000)) * Microsecond,
					SaturationSMs: 1 + rng.Intn(200),
					MemIntensity:  rng.Float64(),
				}
				// Strictly increasing arrivals within a queue so that the
				// FIFO-completion check below is meaningful.
				at := Time(j*500+rng.Intn(400)) * Microsecond
				queues[i].Enqueue(at, k, func(Time) {
					recs[i].order = append(recs[i].order, j)
				})
			}
		}
		eng.Run()
		if !g.Quiescent() {
			return false
		}
		got := 0
		for i := range recs {
			got += len(recs[i].order)
			// FIFO within each queue.
			for x := 1; x < len(recs[i].order); x++ {
				if recs[i].order[x] < recs[i].order[x-1] {
					return false
				}
			}
			if len(recs[i].order) != recs[i].count {
				return false
			}
		}
		return got == total && g.Stats().KernelsCompleted == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with contention, a kernel never finishes earlier than its
// isolated duration at its context cap, and never later than SlowdownCap x
// the duration it would take on its fair SM share.
func TestContentionBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := NewEngine()
		g := NewGPU(eng, DefaultConfig())
		n := 2 + rng.Intn(3)
		type kinfo struct {
			k    *Kernel
			end  Time
			iso  Time
			fair Time
		}
		infos := make([]*kinfo, n)
		for i := range infos {
			c, err := g.NewContext(ContextOptions{NoMemCharge: true})
			if err != nil {
				return false
			}
			q := c.NewQueue("q")
			k := &Kernel{
				Name:          "k",
				Kind:          Compute,
				Work:          Time(10+rng.Intn(2000)) * Microsecond,
				SaturationSMs: 1 + rng.Intn(150),
				MemIntensity:  rng.Float64(),
			}
			ki := &kinfo{k: k}
			ki.iso = k.IsolatedDuration(g.Config().SMs, 0)
			// Worst case under proportional demand sharing: n competitors
			// shrink the allocation to at least want/n, so the duration is
			// at most n x the isolated-at-cap duration.
			ki.fair = Time(int64(n) * int64(ki.iso))
			infos[i] = ki
			q.Enqueue(0, k, func(at Time) { ki.end = at })
		}
		eng.Run()
		for _, ki := range infos {
			if ki.end < ki.iso {
				return false // faster than physically possible
			}
			limit := Time(float64(ki.fair)*g.Config().SlowdownCap) + Microsecond
			if ki.end > limit {
				return false // slower than worst-case bound
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: SM allocations never exceed the device total at any event point.
// Verified indirectly: total busy integral can never exceed SMs x elapsed.
func TestUtilizationNeverExceedsOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := NewEngine()
		g := NewGPU(eng, DefaultConfig())
		for i := 0; i < 3+rng.Intn(5); i++ {
			c, err := g.NewContext(ContextOptions{NoMemCharge: true})
			if err != nil {
				return false
			}
			q := c.NewQueue("q")
			for j := 0; j < 1+rng.Intn(5); j++ {
				q.Enqueue(Time(rng.Intn(100))*Microsecond, &Kernel{
					Name: "k", Kind: Compute,
					Work:          Time(1+rng.Intn(500)) * Microsecond,
					SaturationSMs: 1 + rng.Intn(300),
					MemIntensity:  rng.Float64(),
				}, nil)
			}
		}
		eng.Run()
		return g.Utilization() <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SMs: 0, PCIeBytesPerNS: 1, SlowdownCap: 2},
		{SMs: 10, PCIeBytesPerNS: 0, SlowdownCap: 2},
		{SMs: 10, PCIeBytesPerNS: 1, SlowdownCap: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d: invalid config accepted", i)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestSetSMLimitTakesEffect(t *testing.T) {
	eng, g := testGPU(t)
	ctx := mustCtx(t, g, ContextOptions{SMLimit: 27})
	q := ctx.NewQueue("q")
	var e1, e2 Time
	q.Enqueue(0, computeKernel(27*Millisecond, 108, 0), func(at Time) { e1 = at })
	q.Enqueue(0, computeKernel(27*Millisecond, 108, 0), func(at Time) { e2 = at })
	// Mid-run, widen the context to 108 SMs: the running kernel accelerates
	// from the change instant; the queued successor runs fully at 108.
	eng.Schedule(500*Microsecond, func() {
		if err := ctx.SetSMLimit(108); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	// Kernel 1: 0.5ms at 27 SMs consumes 13.5ms work; remaining 13.5ms work
	// at 108 SMs takes 125us -> ends at 625us.
	if e1 != 625*Microsecond {
		t.Errorf("widened kernel finished at %v, want 625us", e1)
	}
	// Kernel 2: 27ms work at 108 SMs = 250us after kernel 1.
	if e2 != 875*Microsecond {
		t.Errorf("successor finished at %v, want 875us", e2)
	}
}

func TestSetSMLimitValidation(t *testing.T) {
	_, g := testGPU(t)
	ctx := mustCtx(t, g, ContextOptions{SMLimit: 54})
	if err := ctx.SetSMLimit(-1); err == nil {
		t.Error("negative limit accepted")
	}
	if err := ctx.SetSMLimit(1000); err == nil {
		t.Error("oversized limit accepted")
	}
	if err := ctx.SetSMLimit(0); err != nil {
		t.Errorf("unrestricting failed: %v", err)
	}
}

func TestPriorityWithPauseInterplay(t *testing.T) {
	eng, g := testGPU(t)
	rt := mustCtx(t, g, ContextOptions{Priority: 1})
	be := mustCtx(t, g, ContextOptions{})
	rq, bq := rt.NewQueue("rt"), be.NewQueue("be")
	var eBE Time
	// Pause the RT queue before enqueueing: its kernel must not dispatch,
	// so the BE kernel gets the whole device immediately. (Pausing after
	// the enqueue would be too late — the kernel starts instantly and GPU
	// kernels are non-preemptable.)
	rq.Pause()
	rq.Enqueue(0, computeKernel(108*Millisecond, 108, 0), nil)
	bq.Enqueue(0, computeKernel(108*Millisecond, 108, 0), func(at Time) { eBE = at })
	eng.Schedule(2*Millisecond, rq.Resume)
	eng.Run()
	if eBE != Millisecond {
		t.Errorf("BE kernel finished at %v, want 1ms (RT paused)", eBE)
	}
}

func TestActiveSMsSnapshot(t *testing.T) {
	eng, g := testGPU(t)
	q := mustCtx(t, g, ContextOptions{SMLimit: 54}).NewQueue("q")
	q.Enqueue(0, computeKernel(54*Millisecond, 108, 0), nil)
	eng.Schedule(500*Microsecond, func() {
		if a := g.ActiveSMs(); a != 54 {
			t.Errorf("ActiveSMs = %g mid-run, want 54", a)
		}
	})
	eng.Run()
	if a := g.ActiveSMs(); a != 0 {
		t.Errorf("ActiveSMs = %g after drain, want 0", a)
	}
}

func TestWaterFillProperties(t *testing.T) {
	f := func(rawDemands []uint16, rawCap uint16) bool {
		if len(rawDemands) == 0 {
			return true
		}
		demands := make([]float64, len(rawDemands))
		sum := 0.0
		for i, r := range rawDemands {
			demands[i] = float64(r%200) + 0.5
			sum += demands[i]
		}
		capacity := float64(rawCap%300) + 1
		grants := waterFill(demands, capacity)
		total := 0.0
		for i, gr := range grants {
			if gr < -1e-9 || gr > demands[i]+1e-9 {
				return false // grant outside [0, demand]
			}
			total += gr
		}
		want := capacity
		if sum < want {
			want = sum
		}
		return total <= want+1e-6 && total >= want-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWaterFillMaxMinFairness(t *testing.T) {
	// Small demands are fully satisfied; big ones share the rest equally.
	grants := waterFill([]float64{10, 100, 100}, 90)
	if grants[0] != 10 {
		t.Errorf("small demand granted %g, want 10 (fully satisfied)", grants[0])
	}
	if grants[1] != 40 || grants[2] != 40 {
		t.Errorf("big demands granted %g/%g, want 40/40", grants[1], grants[2])
	}
}
