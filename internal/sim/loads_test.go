package sim

import "testing"

// loadTracer records allocation snapshots and enqueue events.
type loadTracer struct {
	countingTracer
	samples  []Time
	enqueues []Time
	// lastTotal is the total compute-SM allocation of the latest snapshot.
	lastTotal float64
	// maxTotal tracks the largest total allocation observed.
	maxTotal float64
}

func (l *loadTracer) AllocationsChanged(at Time, loads []QueueLoad) {
	l.samples = append(l.samples, at)
	total := 0.0
	for _, ql := range loads {
		total += ql.Alloc
	}
	l.lastTotal = total
	if total > l.maxTotal {
		l.maxTotal = total
	}
}

func (l *loadTracer) KernelEnqueued(at Time, q *Queue, k *Kernel) {
	l.enqueues = append(l.enqueues, at)
}

func TestAllocationTracerObservesEveryReschedule(t *testing.T) {
	eng := NewEngine()
	gpu := NewGPU(eng, DefaultConfig())
	lt := &loadTracer{}
	gpu.AddTracer(lt)

	ctx, err := gpu.NewContext(ContextOptions{NoMemCharge: true, SMLimit: 54})
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.NewQueue("q")
	k := &Kernel{Name: "k", Kind: Compute, Work: 108 * Microsecond, SaturationSMs: 108}
	q.Enqueue(0, k, nil)
	q.Enqueue(10*Microsecond, k, nil)
	eng.Run()

	if len(lt.enqueues) != 2 {
		t.Fatalf("enqueue events = %d, want 2", len(lt.enqueues))
	}
	if len(lt.samples) < 3 {
		t.Fatalf("allocation samples = %d, want >= 3 (two starts + final drain)", len(lt.samples))
	}
	for i := 1; i < len(lt.samples); i++ {
		if lt.samples[i] < lt.samples[i-1] {
			t.Fatalf("sample times regress: %v after %v", lt.samples[i], lt.samples[i-1])
		}
	}
	// The context cap must bound every observed allocation, and the device
	// must end quiescent with nothing allocated.
	if lt.maxTotal > 54+1e-9 {
		t.Errorf("allocation %g exceeded the 54-SM context cap", lt.maxTotal)
	}
	if lt.maxTotal < 53 {
		t.Errorf("allocation never approached the 54-SM cap: max %g", lt.maxTotal)
	}
	if lt.lastTotal != 0 {
		t.Errorf("final snapshot still shows %g SMs allocated", lt.lastTotal)
	}
}

func TestLoadsSnapshotWantCoversPendingHeads(t *testing.T) {
	eng := NewEngine()
	gpu := NewGPU(eng, DefaultConfig())
	ctx, err := gpu.NewContext(ContextOptions{NoMemCharge: true})
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.NewQueue("q")
	q.Pause()
	k := &Kernel{Name: "k", Kind: Compute, Work: Microsecond, SaturationSMs: 40}
	q.Enqueue(0, k, nil)
	eng.Run() // paused: nothing executes

	loads := gpu.Loads(nil)
	if len(loads) != 1 {
		t.Fatalf("loads = %d entries, want 1", len(loads))
	}
	ql := loads[0]
	if !ql.Paused || ql.Pending != 1 || ql.Running != nil {
		t.Fatalf("paused queue load = %+v, want paused with 1 pending", ql)
	}
	if ql.Want != 40 {
		t.Errorf("paused head Want = %g, want 40 (saturation-bounded appetite)", ql.Want)
	}
	if ql.Alloc != 0 {
		t.Errorf("paused queue Alloc = %g, want 0", ql.Alloc)
	}
}

func TestContextOwnerTag(t *testing.T) {
	eng := NewEngine()
	gpu := NewGPU(eng, DefaultConfig())
	owned, err := gpu.NewContext(ContextOptions{NoMemCharge: true, Owner: OwnerTag(0)})
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := owned.Owner(); !ok || id != 0 {
		t.Errorf("Owner() = (%d, %v), want (0, true)", id, ok)
	}
	anon, err := gpu.NewContext(ContextOptions{NoMemCharge: true})
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := anon.Owner(); ok || id != -1 {
		t.Errorf("unowned Owner() = (%d, %v), want (-1, false)", id, ok)
	}
}
