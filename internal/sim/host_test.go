package sim

import "testing"

func TestHostSerialLaunchCost(t *testing.T) {
	eng, g := testGPU(t)
	h := NewHost(g)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	var ends []Time
	// Two tiny kernels launched back to back: the second arrives one launch
	// latency (3us) after the first.
	for i := 0; i < 2; i++ {
		h.Launch(q, computeKernel(108*Microsecond, 108, 0), func(at Time) { ends = append(ends, at) })
	}
	eng.Run()
	if len(ends) != 2 {
		t.Fatalf("%d completions, want 2", len(ends))
	}
	// Kernel 1 arrives at 3us, runs 1us -> ends 4us. Kernel 2 arrives at 6us,
	// runs 1us -> ends 7us.
	if ends[0] != 4*Microsecond {
		t.Errorf("first kernel ended at %v, want 4us", ends[0])
	}
	if ends[1] != 7*Microsecond {
		t.Errorf("second kernel ended at %v, want 7us (serial launches)", ends[1])
	}
}

func TestHostSpendDelaysLaunches(t *testing.T) {
	eng, g := testGPU(t)
	h := NewHost(g)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	h.Spend(100 * Microsecond) // scheduler burns 100us first
	var done Time
	h.Launch(q, computeKernel(108*Microsecond, 108, 0), func(at Time) { done = at })
	eng.Run()
	if done != 104*Microsecond {
		t.Errorf("kernel ended at %v, want 104us (100us spend + 3us launch + 1us run)", done)
	}
}

func TestHostNowTracksEngine(t *testing.T) {
	eng, g := testGPU(t)
	h := NewHost(g)
	eng.Schedule(50*Microsecond, func() {
		if h.Now() != 50*Microsecond {
			t.Errorf("host Now = %v, want 50us (follows engine when idle)", h.Now())
		}
	})
	eng.Run()
}

func TestHostLaunchAtHonorsVacuum(t *testing.T) {
	eng, g := testGPU(t)
	h := NewHost(g)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	var done Time
	// Context-switch vacuum: kernel may not arrive before 50us even though
	// the host is free at 3us.
	h.LaunchAt(q, computeKernel(108*Microsecond, 108, 0), 50*Microsecond, func(at Time) { done = at })
	eng.Run()
	if done != 51*Microsecond {
		t.Errorf("kernel ended at %v, want 51us (50us vacuum + 1us run)", done)
	}
	// Host itself was free at 3us, not blocked by the vacuum.
	if h.free != 3*Microsecond {
		t.Errorf("host free at %v, want 3us", h.free)
	}
}

func TestHostSync(t *testing.T) {
	eng, g := testGPU(t)
	h := NewHost(g)
	h.Sync()
	if h.Now() != g.Config().SquadSync {
		t.Errorf("host after Sync at %v, want %v", h.Now(), g.Config().SquadSync)
	}
	_ = eng
}

// Property: host time never runs backwards through any interleaving of
// Spend, Launch and engine progress.
func TestHostMonotoneProperty(t *testing.T) {
	eng, g := testGPU(t)
	h := NewHost(g)
	q := mustCtx(t, g, ContextOptions{}).NewQueue("q")
	prev := h.Now()
	for i := 0; i < 50; i++ {
		switch i % 3 {
		case 0:
			h.Spend(Time(i) * Microsecond)
		case 1:
			h.Launch(q, computeKernel(Millisecond, 10, 0), nil)
		default:
			eng.RunUntil(eng.Now() + Time(i)*Microsecond)
		}
		if now := h.Now(); now < prev {
			t.Fatalf("host time went backwards: %v after %v (step %d)", now, prev, i)
		} else {
			prev = now
		}
	}
	eng.Run()
}
