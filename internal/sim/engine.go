// Package sim implements a deterministic discrete-event simulator of a
// multi-context GPU, the execution substrate for the BLESS reproduction.
//
// The simulated device follows the general GPU-sharing workflow of the paper
// (§3.1): host-side schedulers create contexts with SM-affinity restrictions,
// enqueue kernels into per-context device queues, and the hardware scheduler
// dispatches blocks of the queue-head kernels onto streaming multiprocessors
// (SMs). Kernels within one queue are serialized; kernels across queues run
// concurrently, capped by their context's SM limit and slowed by memory
// bandwidth contention. Memory-management kernels (H2D/D2H copies) run on a
// DMA engine and contend for PCIe bandwidth.
//
// All time is virtual: an int64 nanosecond clock driven by an event heap.
// Simulations are fully deterministic, which the test-suite and the benchmark
// harness rely on.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a virtual-time instant, in nanoseconds since simulation start.
type Time int64

// Duration constants for readable virtual-time arithmetic.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// String formats the instant with microsecond precision, e.g. "12.345ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", float64(t)/float64(Second))
	}
}

// Milliseconds returns the instant as a float64 count of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns the instant as a float64 count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Engine.Schedule and may be revoked with Cancel.
//
// Event objects are pooled: once an event has fired (its callback returned)
// or has been canceled and subsequently discarded by the engine, its handle
// is dead and the object may back a future Schedule call. Holding a handle
// past that point and calling Cancel on it would revoke an unrelated later
// event — release (nil out) stored handles no later than inside the firing
// callback, as GPU.completion and the temporal baseline's slice timer do.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Cancel revokes the event. Canceling an already-fired or already-canceled
// event is a no-op. Cancel is safe to call from within event callbacks.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation loop: a virtual clock plus a heap of
// timed callbacks. Callbacks run strictly in time order (FIFO among equal
// times) and may schedule further events. Engine is not safe for concurrent
// use; the whole simulation is single-threaded by design.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	free    []*Event // recycled events backing future Schedule calls
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule registers fn to run at virtual time at. If at is in the past, the
// event fires at the current time (never before already-pending earlier
// events). The returned Event may be canceled.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.canceled = at, e.seq, fn, false
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// recycle returns a dead (fired or canceled-and-popped) event to the pool.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil // release the closure
	e.free = append(e.free, ev)
}

// After registers fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// Pending reports the number of scheduled (possibly canceled) events.
func (e *Engine) Pending() int { return len(e.events) }

// Stop makes the currently running Run/RunUntil call return after the
// in-flight callback completes. Pending events stay queued.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the earliest pending non-canceled event and advances the clock
// to its timestamp. It reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		ev.fn()
		e.recycle(ev)
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then sets the clock to
// the deadline (if it has not already passed it) and returns. Events beyond
// the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		// Peek at the earliest live event.
		idx := -1
		for len(e.events) > 0 && e.events[0].canceled {
			e.recycle(heap.Pop(&e.events).(*Event))
		}
		if len(e.events) > 0 {
			idx = 0
		}
		if idx < 0 || e.events[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunBefore fires events with timestamps strictly earlier than deadline,
// then sets the clock to exactly deadline and returns. Events at or past the
// deadline stay queued and fire in a later window. This is the window
// primitive of the sharded fleet simulation: every shard runs [now, deadline)
// locally, and all clocks agree at the barrier.
func (e *Engine) RunBefore(deadline Time) {
	e.stopped = false
	for !e.stopped {
		for len(e.events) > 0 && e.events[0].canceled {
			e.recycle(heap.Pop(&e.events).(*Event))
		}
		if len(e.events) == 0 || e.events[0].at >= deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// PendingTimes appends the timestamps of every live (non-canceled) pending
// event to buf, in ascending order, and returns the extended slice. It is the
// engine's canonical queue view for snapshotting: callbacks are closures and
// cannot be serialized, but their firing instants can — two runs whose
// engines agree on PendingTimes at a barrier hold the same schedule. The
// heap is not disturbed; canceled events are skipped, not collected.
func (e *Engine) PendingTimes(buf []Time) []Time {
	start := len(buf)
	for _, ev := range e.events {
		if ev != nil && !ev.canceled {
			buf = append(buf, ev.at)
		}
	}
	tail := buf[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return buf
}

// PeekTime reports the timestamp of the earliest live (non-canceled) pending
// event. ok is false when no live event is queued.
func (e *Engine) PeekTime() (at Time, ok bool) {
	for len(e.events) > 0 && e.events[0].canceled {
		e.recycle(heap.Pop(&e.events).(*Event))
	}
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}
