// Package chaos provides seeded, deterministic fault injection for the
// simulated GPU-sharing stack.
//
// A Plan declares what goes wrong and when: kernel executions that fault on
// completion, restricted-context creations that fail, transient device
// stalls that defer launches, and client crash/leave events at simulated
// timestamps. An Injector turns the plan into per-decision answers that the
// BLESS runtime consults at well-defined points (kernel completion, context
// establishment, launch admission).
//
// Every decision is a pure hash of (seed, identifiers) — no live RNG state —
// so two runs of the same plan fault identically regardless of call order,
// and the simulator's determinism digest stays reproducible under chaos. The
// Injector also implements sim.Tracer, so it plugs into the GPU's existing
// tracer fan-out to observe the kernel stream it is perturbing.
package chaos

import (
	"sort"

	"bless/internal/sim"
)

// ClientEvent schedules one client-lifecycle fault: the client (by deployed
// ID) crashes or leaves at the simulated instant At.
type ClientEvent struct {
	Client int
	At     sim.Time
}

// DeviceEvent schedules one device-level fault: the device (by pool index)
// crashes at the simulated instant At. Interpreted by the fleet runner —
// every resident client crashes, the control plane re-places the displaced
// tenants on surviving devices and re-submits their stranded requests.
type DeviceEvent struct {
	Device int
	At     sim.Time
}

// Stall is a transient device stall: launches landing inside [At, At+Dur)
// are deferred to the window's end, modeling a driver hiccup or ECC scrub
// during which the device accepts no new work. Running kernels are not
// affected (they are un-preemptable and already resident).
type Stall struct {
	At  sim.Time
	Dur sim.Time
}

// ForcedFault faults one specific kernel launch deterministically,
// independent of KernelFaultRate — the handle metamorphic tests use to
// inject a single, precisely-placed fault and verify it is fully masked.
type ForcedFault struct {
	// Client and Seq identify the request; Kernel is the kernel index
	// within it.
	Client int
	Seq    int
	Kernel int
	// Times is how many consecutive attempts fault before the retry
	// succeeds (default 1).
	Times int
}

// Plan is a declarative, seeded fault plan. The zero value injects nothing.
type Plan struct {
	// Seed keys every hashed fault decision.
	Seed int64
	// KernelFaultRate is the probability that a kernel execution faults on
	// completion (the runtime then retries it with capped exponential
	// backoff). Applied per (client, request, kernel, attempt).
	KernelFaultRate float64
	// MaxFaultsPerKernel bounds consecutive faults of one kernel so retries
	// always converge (default 2). Forced faults are bounded by their own
	// Times instead.
	MaxFaultsPerKernel int
	// CtxFaultRate is the probability that the first attempt to establish a
	// given SM-restricted context fails; re-establishment succeeds, and the
	// runtime degrades to an existing slot or the default context meanwhile.
	CtxFaultRate float64
	// Stalls are transient device-stall windows, any order.
	Stalls []Stall
	// Crashes and Leaves remove deployed clients mid-run: a crash is abrupt
	// (queued kernels cancelled, quota released immediately), a leave is
	// graceful (backlog drains first). Interpreted by the harness runner.
	Crashes []ClientEvent
	Leaves  []ClientEvent
	// DeviceCrashes kill whole pool devices mid-run (multi-device fleet
	// plans only; interpreted by the fleet runner, like client churn).
	DeviceCrashes []DeviceEvent
	// Forced are precisely-placed kernel faults (see ForcedFault).
	Forced []ForcedFault
}

// DeviceFaults reports whether the plan perturbs device execution at all —
// i.e. whether an Injector needs to be attached. Client churn alone does not
// require one.
func (p *Plan) DeviceFaults() bool {
	return p.KernelFaultRate > 0 || p.CtxFaultRate > 0 ||
		len(p.Stalls) > 0 || len(p.Forced) > 0
}

// Stats counts the injector's decisions and observations.
type Stats struct {
	// KernelFaults, CtxFaults and StallDelays count injected faults by kind.
	KernelFaults int64
	CtxFaults    int64
	StallDelays  int64
	// KernelsStarted/KernelsRetired count the device kernel stream observed
	// through the tracer fan-out (retries included).
	KernelsStarted int64
	KernelsRetired int64
}

// Injector answers fault queries for one run. It is not safe for concurrent
// use — the simulator is single-threaded and so is the injector.
type Injector struct {
	plan    Plan
	stalls  []Stall // sorted by At
	ctxSeen map[uint64]bool
	stats   Stats
}

// NewInjector compiles a plan. The plan is copied; defaults are applied
// (MaxFaultsPerKernel=2) and stall windows sorted.
func NewInjector(p Plan) *Injector {
	if p.MaxFaultsPerKernel <= 0 {
		p.MaxFaultsPerKernel = 2
	}
	in := &Injector{plan: p, ctxSeen: make(map[uint64]bool)}
	in.stalls = append(in.stalls, p.Stalls...)
	sort.Slice(in.stalls, func(i, j int) bool { return in.stalls[i].At < in.stalls[j].At })
	return in
}

// Plan returns the compiled plan (with defaults applied).
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns the decision counters so far.
func (in *Injector) Stats() Stats { return in.stats }

// Hash domains keep the decision families independent under one seed.
const (
	domainKernel = 0x6b65726e
	domainCtx    = 0x63747820
)

// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll maps (seed, domain, a, b, c, d) to a uniform float in [0, 1).
func (in *Injector) roll(domain uint64, a, b, c, d int) float64 {
	h := mix64(uint64(in.plan.Seed) ^ domain)
	h = mix64(h ^ uint64(a))
	h = mix64(h ^ uint64(b))
	h = mix64(h ^ uint64(c))
	h = mix64(h ^ uint64(d))
	return float64(h>>11) / float64(1<<53)
}

// KernelFault reports whether the attempt-th execution (0-based) of kernel
// index kernel of request seq from client faults on completion. Pure in its
// arguments apart from the fault counter.
func (in *Injector) KernelFault(client, seq, kernel, attempt int) bool {
	for _, f := range in.plan.Forced {
		if f.Client == client && f.Seq == seq && f.Kernel == kernel {
			times := f.Times
			if times <= 0 {
				times = 1
			}
			if attempt < times {
				in.stats.KernelFaults++
				return true
			}
			return false
		}
	}
	if in.plan.KernelFaultRate <= 0 || attempt >= in.plan.MaxFaultsPerKernel {
		return false
	}
	if in.roll(domainKernel, client, seq, kernel, attempt) < in.plan.KernelFaultRate {
		in.stats.KernelFaults++
		return true
	}
	return false
}

// ContextFault reports whether establishing an SM-restricted context of the
// given size fails for the client. Only the first establishment attempt per
// (client, sms) can fault; later attempts succeed, so degradation is
// transient.
func (in *Injector) ContextFault(client, sms int) bool {
	if in.plan.CtxFaultRate <= 0 {
		return false
	}
	key := uint64(uint32(client))<<32 | uint64(uint32(sms))
	if in.ctxSeen[key] {
		return false
	}
	in.ctxSeen[key] = true
	if in.roll(domainCtx, client, sms, 0, 0) < in.plan.CtxFaultRate {
		in.stats.CtxFaults++
		return true
	}
	return false
}

// ReleaseAfter maps a launch instant to the earliest instant the device
// accepts the launch: identity outside stall windows, the window end inside
// one. Overlapping/chained windows compound.
func (in *Injector) ReleaseAfter(at sim.Time) sim.Time {
	out := at
	for _, s := range in.stalls {
		if s.At > out {
			break
		}
		if end := s.At + s.Dur; out < end {
			out = end
		}
	}
	if out > at {
		in.stats.StallDelays++
	}
	return out
}

// KernelStart implements sim.Tracer.
func (in *Injector) KernelStart(at sim.Time, q *sim.Queue, k *sim.Kernel) {
	in.stats.KernelsStarted++
}

// KernelEnd implements sim.Tracer.
func (in *Injector) KernelEnd(at sim.Time, q *sim.Queue, k *sim.Kernel, avgSMs float64) {
	in.stats.KernelsRetired++
}
