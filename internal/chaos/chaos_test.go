package chaos

import (
	"testing"

	"bless/internal/sim"
)

// TestKernelFaultDeterminism: two injectors compiled from the same plan must
// answer every query identically — decisions are pure hashes, not RNG state.
func TestKernelFaultDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, KernelFaultRate: 0.3}
	a, b := NewInjector(plan), NewInjector(plan)
	for client := 0; client < 3; client++ {
		for seq := 0; seq < 20; seq++ {
			for k := 0; k < 5; k++ {
				for attempt := 0; attempt < 3; attempt++ {
					if a.KernelFault(client, seq, k, attempt) != b.KernelFault(client, seq, k, attempt) {
						t.Fatalf("divergent decision at client=%d seq=%d kernel=%d attempt=%d", client, seq, k, attempt)
					}
				}
			}
		}
	}
	// Query order must not matter either: a fresh injector queried in reverse
	// agrees with the forward pass.
	c := NewInjector(plan)
	for seq := 19; seq >= 0; seq-- {
		if c.KernelFault(1, seq, 0, 0) != b.KernelFault(1, seq, 0, 0) {
			t.Fatalf("decision for seq %d depends on query order", seq)
		}
	}
}

// TestKernelFaultRate: the empirical fault rate over many first attempts must
// track the configured probability.
func TestKernelFaultRate(t *testing.T) {
	const rate, n = 0.1, 20000
	in := NewInjector(Plan{Seed: 7, KernelFaultRate: rate})
	faults := 0
	for i := 0; i < n; i++ {
		if in.KernelFault(0, i, 0, 0) {
			faults++
		}
	}
	got := float64(faults) / n
	if got < rate*0.7 || got > rate*1.3 {
		t.Fatalf("empirical fault rate %.4f far from configured %.2f", got, rate)
	}
	if in.Stats().KernelFaults != int64(faults) {
		t.Fatalf("stats count %d != observed %d", in.Stats().KernelFaults, faults)
	}
}

// TestMaxFaultsPerKernel: attempts at or past the bound never fault, so
// retries always converge.
func TestMaxFaultsPerKernel(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, KernelFaultRate: 1.0, MaxFaultsPerKernel: 2})
	if !in.KernelFault(0, 0, 0, 0) || !in.KernelFault(0, 0, 0, 1) {
		t.Fatal("rate 1.0 must fault attempts below the bound")
	}
	for attempt := 2; attempt < 6; attempt++ {
		if in.KernelFault(0, 0, 0, attempt) {
			t.Fatalf("attempt %d faulted past MaxFaultsPerKernel=2", attempt)
		}
	}
}

// TestForcedFault: a forced fault fires for exactly its Times first attempts
// of exactly its placement, regardless of the rate.
func TestForcedFault(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, Forced: []ForcedFault{{Client: 1, Seq: 4, Kernel: 2, Times: 2}}})
	if !in.KernelFault(1, 4, 2, 0) || !in.KernelFault(1, 4, 2, 1) {
		t.Fatal("forced fault must fire for its first Times attempts")
	}
	if in.KernelFault(1, 4, 2, 2) {
		t.Fatal("forced fault fired past Times")
	}
	for _, q := range [][3]int{{0, 4, 2}, {1, 3, 2}, {1, 4, 1}} {
		if in.KernelFault(q[0], q[1], q[2], 0) {
			t.Fatalf("unforced placement %v faulted with zero rate", q)
		}
	}
	if got := in.Stats().KernelFaults; got != 2 {
		t.Fatalf("stats count %d, want 2", got)
	}
}

// TestContextFaultOnce: only the first establishment attempt per (client,
// sms) pair can fault — degradation is transient by construction.
func TestContextFaultOnce(t *testing.T) {
	in := NewInjector(Plan{Seed: 11, CtxFaultRate: 1.0})
	if !in.ContextFault(0, 30) {
		t.Fatal("rate 1.0 must fault the first establishment")
	}
	if in.ContextFault(0, 30) {
		t.Fatal("re-establishment of the same (client, sms) faulted again")
	}
	if !in.ContextFault(0, 60) {
		t.Fatal("a different SM size is a fresh establishment")
	}
	if !in.ContextFault(1, 30) {
		t.Fatal("a different client is a fresh establishment")
	}
}

// TestReleaseAfter: stall windows defer launches to their end, and chained /
// overlapping windows compound.
func TestReleaseAfter(t *testing.T) {
	in := NewInjector(Plan{Stalls: []Stall{
		{At: 100, Dur: 50},  // [100,150)
		{At: 140, Dur: 60},  // [140,200) — overlaps the first
		{At: 300, Dur: 10},  // separate window
		{At: 200, Dur: 100}, // [200,300) — chains into the 300 window
	}})
	cases := []struct{ at, want sim.Time }{
		{50, 50},     // before any stall
		{100, 310},   // 100→150→200→300→310 through the chain
		{145, 310},   // inside the overlap, same chain
		{250, 310},   // mid third window
		{305, 310},   // inside the last window
		{310, 310},   // at the boundary: accepted
		{1000, 1000}, // after everything
	}
	for _, c := range cases {
		if got := in.ReleaseAfter(c.at); got != c.want {
			t.Fatalf("ReleaseAfter(%d) = %d, want %d", c.at, got, c.want)
		}
	}
}

// TestZeroPlanInjectsNothing: the zero plan is inert and reports no device
// faults to attach for.
func TestZeroPlanInjectsNothing(t *testing.T) {
	var p Plan
	if p.DeviceFaults() {
		t.Fatal("zero plan claims device faults")
	}
	in := NewInjector(p)
	for i := 0; i < 100; i++ {
		if in.KernelFault(0, i, 0, 0) || in.ContextFault(0, i+1) {
			t.Fatal("zero plan injected a fault")
		}
		if got := in.ReleaseAfter(sim.Time(i)); got != sim.Time(i) {
			t.Fatalf("zero plan stalled a launch: %d → %d", i, got)
		}
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("zero plan accumulated stats %+v", s)
	}
}
