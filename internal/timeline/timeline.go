// Package timeline reconstructs execution timelines from the simulator's
// kernel tracer and renders them as ASCII Gantt charts — the textual
// equivalent of the paper's scheduling-scheme illustrations (Fig 1, Fig 3,
// Fig 7, Fig 18a).
package timeline

import (
	"fmt"
	"sort"
	"strings"

	"bless/internal/sim"
)

// Span is one executed kernel.
type Span struct {
	// Lane groups spans into a display row (typically the client name).
	Lane string
	// Kernel is the kernel's name.
	Kernel string
	// Queue is the device queue's label.
	Queue string
	// Start and End bound the execution in virtual time.
	Start, End sim.Time
	// AvgSMs is the kernel's time-averaged SM allocation.
	AvgSMs float64
}

// Recorder implements sim.Tracer, collecting spans. Lanes default to the
// queue's context label; set LaneOf to override.
type Recorder struct {
	// LaneOf maps a queue to a display lane; nil uses the queue's context
	// label.
	LaneOf func(q *sim.Queue) string

	open  map[*sim.Queue][]pending
	Spans []Span
}

type pending struct {
	k     *sim.Kernel
	start sim.Time
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: make(map[*sim.Queue][]pending)}
}

// KernelStart implements sim.Tracer.
func (r *Recorder) KernelStart(at sim.Time, q *sim.Queue, k *sim.Kernel) {
	r.open[q] = append(r.open[q], pending{k: k, start: at})
}

// KernelEnd implements sim.Tracer.
func (r *Recorder) KernelEnd(at sim.Time, q *sim.Queue, k *sim.Kernel, avgSMs float64) {
	ps := r.open[q]
	if len(ps) == 0 {
		return // unmatched end; ignore rather than panic in a tracer
	}
	p := ps[0]
	r.open[q] = ps[1:]
	lane := q.Context().Label()
	if r.LaneOf != nil {
		lane = r.LaneOf(q)
	}
	r.Spans = append(r.Spans, Span{
		Lane:   lane,
		Kernel: p.k.Name,
		Queue:  q.Label(),
		Start:  p.start,
		End:    at,
		AvgSMs: avgSMs,
	})
}

// Window returns the time range covered by the recorded spans.
func (r *Recorder) Window() (start, end sim.Time) {
	for i, s := range r.Spans {
		if i == 0 || s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
	}
	return start, end
}

// Lanes lists the distinct lanes in first-appearance order.
func (r *Recorder) Lanes() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range r.Spans {
		if !seen[s.Lane] {
			seen[s.Lane] = true
			out = append(out, s.Lane)
		}
	}
	return out
}

// Gantt renders the spans as one ASCII row per lane, width columns wide.
// Each column is shaded by the lane's busy fraction within that time slot:
// ' ' idle, '.' <25%, '-' <50%, '=' <75%, '#' >=75%. A shared time axis and
// per-lane busy percentages are appended.
func (r *Recorder) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	start, end := r.Window()
	if end <= start || len(r.Spans) == 0 {
		return "(no spans)\n"
	}
	span := float64(end - start)
	lanes := r.Lanes()
	sort.Strings(lanes)
	busy := map[string][]float64{}
	for _, l := range lanes {
		busy[l] = make([]float64, width)
	}

	for _, s := range r.Spans {
		b := busy[s.Lane]
		lo := float64(s.Start-start) / span * float64(width)
		hi := float64(s.End-start) / span * float64(width)
		for c := int(lo); c < width && float64(c) < hi; c++ {
			colLo, colHi := float64(c), float64(c+1)
			overlap := minF(hi, colHi) - maxF(lo, colLo)
			if overlap > 0 {
				b[c] += overlap
			}
		}
	}

	nameW := 0
	for _, l := range lanes {
		if len(l) > nameW {
			nameW = len(l)
		}
	}
	var sb strings.Builder
	for _, l := range lanes {
		total := 0.0
		fmt.Fprintf(&sb, "%-*s |", nameW, l)
		for _, f := range busy[l] {
			total += f
			switch {
			case f <= 0.01:
				sb.WriteByte(' ')
			case f < 0.25:
				sb.WriteByte('.')
			case f < 0.5:
				sb.WriteByte('-')
			case f < 0.75:
				sb.WriteByte('=')
			default:
				sb.WriteByte('#')
			}
		}
		fmt.Fprintf(&sb, "| %3.0f%% busy\n", total/float64(width)*100)
	}
	fmt.Fprintf(&sb, "%-*s  %v%*v\n", nameW, "", start, width-len(start.String())+2, end)
	return sb.String()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
