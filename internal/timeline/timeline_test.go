package timeline

import (
	"strings"
	"testing"

	"bless/internal/sim"
)

func TestRecorderCapturesSpans(t *testing.T) {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	rec := NewRecorder()
	gpu.SetTracer(rec)

	ctx, err := gpu.NewContext(sim.ContextOptions{SMLimit: 54, Label: "clientA", NoMemCharge: true})
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.NewQueue("qA")
	for i := 0; i < 3; i++ {
		q.Enqueue(0, &sim.Kernel{Name: "k", Kind: sim.Compute, Work: 54 * sim.Millisecond, SaturationSMs: 108}, nil)
	}
	eng.Run()

	if len(rec.Spans) != 3 {
		t.Fatalf("%d spans recorded, want 3", len(rec.Spans))
	}
	var prev sim.Time
	for i, s := range rec.Spans {
		if s.Lane != "clientA" {
			t.Errorf("span %d lane %q, want clientA", i, s.Lane)
		}
		if s.End-s.Start != sim.Millisecond {
			t.Errorf("span %d duration %v, want 1ms", i, s.End-s.Start)
		}
		if s.Start < prev {
			t.Errorf("span %d overlaps its predecessor (queue serialization broken)", i)
		}
		if s.AvgSMs < 53.9 || s.AvgSMs > 54.1 {
			t.Errorf("span %d avg SMs %.1f, want 54", i, s.AvgSMs)
		}
		prev = s.End
	}
	start, end := rec.Window()
	if start != 0 || end != 3*sim.Millisecond {
		t.Errorf("window [%v, %v], want [0, 3ms]", start, end)
	}
}

func TestRecorderLaneOverride(t *testing.T) {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	rec := NewRecorder()
	rec.LaneOf = func(q *sim.Queue) string { return "custom/" + q.Label() }
	gpu.SetTracer(rec)
	ctx, _ := gpu.NewContext(sim.ContextOptions{NoMemCharge: true})
	ctx.NewQueue("x").Enqueue(0, &sim.Kernel{Name: "k", Kind: sim.Compute, Work: sim.Millisecond, SaturationSMs: 1}, nil)
	eng.Run()
	if len(rec.Spans) != 1 || rec.Spans[0].Lane != "custom/x" {
		t.Errorf("spans = %+v", rec.Spans)
	}
}

func TestRecorderOverlappingKernelsSameQueue(t *testing.T) {
	// When two kernels of one queue overlap in time (starts before ends),
	// the recorder must match ends to starts FIFO — the device delivers
	// per-queue events in launch order.
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	rec := NewRecorder()
	ctx, err := gpu.NewContext(sim.ContextOptions{Label: "c", NoMemCharge: true})
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.NewQueue("q")
	k1 := &sim.Kernel{Name: "first"}
	k2 := &sim.Kernel{Name: "second"}

	rec.KernelStart(0, q, k1)
	rec.KernelStart(5*sim.Microsecond, q, k2)
	rec.KernelEnd(10*sim.Microsecond, q, k1, 54)
	rec.KernelEnd(20*sim.Microsecond, q, k2, 27)

	if len(rec.Spans) != 2 {
		t.Fatalf("%d spans, want 2", len(rec.Spans))
	}
	s1, s2 := rec.Spans[0], rec.Spans[1]
	if s1.Kernel != "first" || s1.Start != 0 || s1.End != 10*sim.Microsecond {
		t.Errorf("first span wrong: %+v", s1)
	}
	if s2.Kernel != "second" || s2.Start != 5*sim.Microsecond || s2.End != 20*sim.Microsecond {
		t.Errorf("second span wrong: %+v", s2)
	}
	if s1.AvgSMs != 54 || s2.AvgSMs != 27 {
		t.Errorf("avg SMs misattributed: %v / %v", s1.AvgSMs, s2.AvgSMs)
	}

	// An unmatched end must be ignored, not panic or fabricate a span.
	rec.KernelEnd(30*sim.Microsecond, q, k1, 1)
	if len(rec.Spans) != 2 {
		t.Errorf("unmatched end fabricated a span: %d spans", len(rec.Spans))
	}
}

func TestRecorderLaneOfMergesQueues(t *testing.T) {
	// A LaneOf override can collapse several queues (e.g. a client's
	// default and SM-restricted contexts) into one display lane.
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	rec := NewRecorder()
	rec.LaneOf = func(*sim.Queue) string { return "merged" }
	gpu.SetTracer(rec)
	for _, name := range []string{"a/default", "a/sm54"} {
		ctx, err := gpu.NewContext(sim.ContextOptions{Label: name, NoMemCharge: true})
		if err != nil {
			t.Fatal(err)
		}
		ctx.NewQueue(name+"/q").Enqueue(0,
			&sim.Kernel{Name: "k", Kind: sim.Compute, Work: sim.Millisecond, SaturationSMs: 1}, nil)
	}
	eng.Run()
	if len(rec.Spans) != 2 {
		t.Fatalf("%d spans, want 2", len(rec.Spans))
	}
	if got := rec.Lanes(); len(got) != 1 || got[0] != "merged" {
		t.Errorf("lanes = %v, want [merged]", got)
	}
}

func TestGanttRendersLanesAndBusy(t *testing.T) {
	r := NewRecorder()
	r.Spans = []Span{
		{Lane: "a", Start: 0, End: 50 * sim.Millisecond},
		{Lane: "b", Start: 50 * sim.Millisecond, End: 100 * sim.Millisecond},
	}
	out := r.Gantt(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3 (two lanes + axis):\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "a |") || !strings.Contains(lines[0], "50% busy") {
		t.Errorf("lane a rendering wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "b |") || !strings.Contains(lines[1], "50% busy") {
		t.Errorf("lane b rendering wrong: %q", lines[1])
	}
	// Lane a busy in the first half, lane b in the second.
	aRow := lines[0][strings.Index(lines[0], "|")+1:]
	if aRow[0] != '#' || aRow[35] == '#' {
		t.Errorf("lane a shading wrong: %q", aRow)
	}
}

func TestGanttEmpty(t *testing.T) {
	r := NewRecorder()
	if out := r.Gantt(40); !strings.Contains(out, "no spans") {
		t.Errorf("empty gantt = %q", out)
	}
}

func TestGanttConcurrentLanesShareTimeAxis(t *testing.T) {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	rec := NewRecorder()
	gpu.SetTracer(rec)
	for _, name := range []string{"c0", "c1"} {
		ctx, _ := gpu.NewContext(sim.ContextOptions{SMLimit: 54, Label: name, NoMemCharge: true})
		q := ctx.NewQueue(name)
		q.Enqueue(0, &sim.Kernel{Name: "k", Kind: sim.Compute, Work: 54 * sim.Millisecond, SaturationSMs: 54}, nil)
	}
	eng.Run()
	out := rec.Gantt(30)
	if !strings.Contains(out, "c0") || !strings.Contains(out, "c1") {
		t.Fatalf("missing lanes:\n%s", out)
	}
	// Both ran [0, 1ms] concurrently: both 100% busy.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "c0") || strings.HasPrefix(line, "c1") {
			if !strings.Contains(line, "100% busy") {
				t.Errorf("concurrent lane not fully busy: %q", line)
			}
		}
	}
}
