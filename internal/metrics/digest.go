package metrics

import (
	"fmt"
	"math"
	"math/bits"

	"bless/internal/sim"
)

// digestBuckets is the bucket count of the log2 latency histogram: bucket i
// holds samples v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). 64
// buckets cover the full non-negative int64 nanosecond range (2^63 ns ≈ 292
// years of virtual time).
const digestBuckets = 64

// Digest is a streaming latency distribution: constant memory, O(1) updates,
// mergeable snapshots. It replaces the store-all-samples pattern on hot paths
// (always-on metrics, live introspection endpoints) while Summarize remains
// the exact offline path. Count, Sum, Min and Max are exact; quantiles are
// approximated by log-bucketed histogram interpolation (relative error
// bounded by the 2x bucket width, in practice a few percent).
//
// The zero Digest is ready to use. Digest is not safe for concurrent use;
// wrap it in a lock for shared registries.
type Digest struct {
	// Count is the number of observed samples.
	Count int64
	// Sum is the exact sample total.
	Sum sim.Time
	// Min and Max bound the samples (valid when Count > 0).
	Min, Max sim.Time
	// Buckets is the log2 histogram; Buckets[i] counts samples in
	// [2^(i-1), 2^i), with Buckets[0] counting zero (and negative, clamped)
	// samples.
	Buckets [digestBuckets]int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v sim.Time) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // in [1, 63] for positive int64
}

// bucketBounds returns the value range [lo, hi) covered by bucket i.
func bucketBounds(i int) (lo, hi sim.Time) {
	if i <= 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// Observe adds one sample. Negative samples are clamped to zero (latencies
// cannot be negative; tolerating garbage beats panicking in a metrics path).
func (d *Digest) Observe(v sim.Time) {
	if v < 0 {
		v = 0
	}
	if d.Count == 0 || v < d.Min {
		d.Min = v
	}
	if d.Count == 0 || v > d.Max {
		d.Max = v
	}
	d.Count++
	d.Sum += v
	d.Buckets[bucketOf(v)]++
}

// Merge folds another digest into d. Snapshots taken on different devices,
// shards or runs merge exactly (the histogram is a sum; Count/Sum/Min/Max
// combine losslessly), which is what makes the streaming path aggregatable.
func (d *Digest) Merge(o *Digest) {
	if o == nil || o.Count == 0 {
		return
	}
	if d.Count == 0 || o.Min < d.Min {
		d.Min = o.Min
	}
	if d.Count == 0 || o.Max > d.Max {
		d.Max = o.Max
	}
	d.Count += o.Count
	d.Sum += o.Sum
	for i := range d.Buckets {
		d.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the exact average (0 when empty).
func (d *Digest) Mean() sim.Time {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / sim.Time(d.Count)
}

// Quantile approximates the p-quantile (p in [0,1]) by nearest-rank over the
// log buckets with linear interpolation inside the containing bucket, clamped
// to the exact [Min, Max] envelope. An empty digest yields 0.
func (d *Digest) Quantile(p float64) sim.Time {
	if d.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Nearest-rank, matching percentile() on the exact path.
	rank := int64(p*float64(d.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > d.Count {
		rank = d.Count
	}
	// The extreme ranks are known exactly.
	if rank == d.Count {
		return d.Max
	}
	if rank == 1 {
		return d.Min
	}
	var seen int64
	for i := range d.Buckets {
		n := d.Buckets[i]
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketBounds(i)
			// Interpolate the rank's position within the bucket.
			frac := (float64(rank-seen) - 0.5) / float64(n)
			v := sim.Time(float64(lo) + frac*float64(hi-lo))
			if v < d.Min {
				v = d.Min
			}
			if v > d.Max {
				v = d.Max
			}
			return v
		}
		seen += n
	}
	return d.Max
}

// Summary distills the digest into the common Summary shape. Count, Mean,
// Min and Max are exact; the percentiles carry the digest's log-bucket
// approximation error.
func (d *Digest) Summary() Summary {
	return Summary{
		Count: int(d.Count),
		Mean:  d.Mean(),
		P50:   d.Quantile(0.50),
		P95:   d.Quantile(0.95),
		P99:   d.Quantile(0.99),
		Min:   d.Min,
		Max:   d.Max,
	}
}

// String renders the digest's summary compactly.
func (d *Digest) String() string {
	if d.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50~%v p99~%v max=%v", d.Count, d.Mean(), d.Quantile(0.5), d.Quantile(0.99), d.Max)
}

// MergeSummaries combines per-shard exact Summaries into one approximate
// aggregate: Count, Min and Max are exact, Mean is the count-weighted exact
// mean, and each percentile is the count-weighted mean of the shard
// percentiles — the standard (biased, but monotone) shard-merge rule. For a
// lossless merge, keep Digests instead and merge those.
func MergeSummaries(parts ...Summary) Summary {
	var out Summary
	var wP50, wP95, wP99, wMean float64
	for _, s := range parts {
		if s.Count == 0 {
			continue
		}
		if out.Count == 0 || s.Min < out.Min {
			out.Min = s.Min
		}
		if out.Count == 0 || s.Max > out.Max {
			out.Max = s.Max
		}
		w := float64(s.Count)
		wMean += w * float64(s.Mean)
		wP50 += w * float64(s.P50)
		wP95 += w * float64(s.P95)
		wP99 += w * float64(s.P99)
		out.Count += s.Count
	}
	if out.Count == 0 {
		return out
	}
	n := float64(out.Count)
	out.Mean = sim.Time(math.Round(wMean / n))
	out.P50 = sim.Time(math.Round(wP50 / n))
	out.P95 = sim.Time(math.Round(wP95 / n))
	out.P99 = sim.Time(math.Round(wP99 / n))
	return out
}
