package metrics

import (
	"math/rand"
	"testing"

	"bless/internal/sim"
)

func TestPercentileSingleSample(t *testing.T) {
	s := Summarize([]sim.Time{42})
	if s.Count != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
	for _, p := range []sim.Time{s.P50, s.P95, s.P99} {
		if p != 42 {
			t.Fatalf("single-sample percentile should be the sample, got %v (summary %+v)", p, s)
		}
	}
}

func TestPercentileDuplicateHeavy(t *testing.T) {
	// 99 copies of 10 and one 1000: the duplicate must dominate every
	// percentile below the top rank.
	lats := make([]sim.Time, 0, 100)
	for i := 0; i < 99; i++ {
		lats = append(lats, 10)
	}
	lats = append(lats, 1000)
	s := Summarize(lats)
	if s.P50 != 10 || s.P95 != 10 {
		t.Fatalf("duplicate-heavy percentiles wrong: p50=%v p95=%v", s.P50, s.P95)
	}
	if s.P99 != 10 {
		// nearest-rank: rank ceil-ish(0.99*100+0.5)=99 -> still the duplicate
		t.Fatalf("p99 of 99x10+1x1000 should be 10 (nearest rank 99), got %v", s.P99)
	}
	if s.Max != 1000 {
		t.Fatalf("max should see the outlier, got %v", s.Max)
	}
}

func TestPercentileEmptyAndBounds(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	sorted := []sim.Time{1, 2, 3}
	if got := percentile(sorted, 0); got != 1 {
		t.Fatalf("p0 = %v, want first sample", got)
	}
	if got := percentile(sorted, 1); got != 3 {
		t.Fatalf("p100 = %v, want last sample", got)
	}
}

func TestDigestExactFields(t *testing.T) {
	var d Digest
	for _, v := range []sim.Time{5, 3, 9, 7, 1} {
		d.Observe(v)
	}
	if d.Count != 5 || d.Sum != 25 || d.Min != 1 || d.Max != 9 {
		t.Fatalf("digest exact fields wrong: %+v", d)
	}
	if d.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", d.Mean())
	}
}

func TestDigestSingleSampleQuantiles(t *testing.T) {
	var d Digest
	d.Observe(42)
	for _, p := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := d.Quantile(p); got != 42 {
			t.Fatalf("single-sample quantile(%g) = %v, want 42 (min/max clamp)", p, got)
		}
	}
}

func TestDigestDuplicateHeavyQuantiles(t *testing.T) {
	var d Digest
	for i := 0; i < 99; i++ {
		d.Observe(10)
	}
	d.Observe(1000)
	// All mass in one bucket: min/max clamping pins the quantiles to the
	// duplicate's bucket envelope.
	if got := d.Quantile(0.5); got < 8 || got > 16 {
		t.Fatalf("duplicate-heavy q50 = %v, want within bucket [8,16)", got)
	}
	if got := d.Quantile(1); got != 1000 {
		t.Fatalf("q100 = %v, want the exact max 1000", got)
	}
}

func TestDigestZeroAndNegative(t *testing.T) {
	var d Digest
	d.Observe(0)
	d.Observe(-5) // clamped
	if d.Count != 2 || d.Min != 0 || d.Max != 0 || d.Sum != 0 {
		t.Fatalf("zero/negative handling wrong: %+v", d)
	}
	if got := d.Quantile(0.5); got != 0 {
		t.Fatalf("q50 of zeros = %v, want 0", got)
	}
}

func TestDigestMergeEqualsCombinedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, both Digest
	for i := 0; i < 5000; i++ {
		v := sim.Time(rng.Int63n(int64(20 * sim.Millisecond)))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	var merged Digest
	merged.Merge(&a)
	merged.Merge(&b)
	merged.Merge(nil)       // no-op
	merged.Merge(&Digest{}) // empty: no-op
	if merged != both {
		t.Fatalf("merge of shards differs from the combined stream:\n  merged %+v\n  both   %+v", merged, both)
	}
}

func TestDigestQuantileTracksExact(t *testing.T) {
	// Against an exponential-ish latency stream, the digest quantiles must
	// stay within the log-bucket factor-of-2 envelope of the exact ones.
	rng := rand.New(rand.NewSource(7))
	var d Digest
	var lats []sim.Time
	for i := 0; i < 20000; i++ {
		v := sim.Time(rng.ExpFloat64() * float64(2*sim.Millisecond))
		d.Observe(v)
		lats = append(lats, v)
	}
	exact := Summarize(lats)
	approx := d.Summary()
	check := func(name string, got, want sim.Time) {
		lo, hi := float64(want)/2, float64(want)*2
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("%s: digest %v outside [0.5x, 2x] of exact %v", name, got, want)
		}
	}
	check("p50", approx.P50, exact.P50)
	check("p95", approx.P95, exact.P95)
	check("p99", approx.P99, exact.P99)
	if approx.Mean != exact.Mean {
		t.Errorf("digest mean %v != exact mean %v (mean is exact by construction)", approx.Mean, exact.Mean)
	}
	if approx.Min != exact.Min || approx.Max != exact.Max {
		t.Errorf("digest min/max %v/%v != exact %v/%v", approx.Min, approx.Max, exact.Min, exact.Max)
	}
}

func TestMergeSummaries(t *testing.T) {
	a := Summarize([]sim.Time{10, 20, 30})
	b := Summarize([]sim.Time{40, 50, 60})
	m := MergeSummaries(a, b, Summary{})
	if m.Count != 6 {
		t.Fatalf("merged count = %d, want 6", m.Count)
	}
	if m.Min != 10 || m.Max != 60 {
		t.Fatalf("merged min/max = %v/%v, want 10/60", m.Min, m.Max)
	}
	if m.Mean != 35 {
		t.Fatalf("merged mean = %v, want 35 (count-weighted exact)", m.Mean)
	}
	if MergeSummaries().Count != 0 {
		t.Fatal("empty merge should be zero")
	}
}
