// Package metrics implements the evaluation metrics of §6.2: request latency
// summaries, the average-latency-deviation metric for quota flexibility, QoS
// violation rates for the SLO experiments, and throughput.
package metrics

import (
	"fmt"
	"sort"

	"bless/internal/sim"
)

// Summary is a latency distribution snapshot.
type Summary struct {
	// Count is the number of samples.
	Count int
	// Mean is the average latency.
	Mean sim.Time
	// P50, P95 and P99 are latency percentiles.
	P50, P95, P99 sim.Time
	// Min and Max bound the samples.
	Min, Max sim.Time
}

// Summarize computes a Summary over latency samples. An empty input yields a
// zero Summary.
func Summarize(lats []sim.Time) Summary {
	if len(lats) == 0 {
		return Summary{}
	}
	sorted := append([]sim.Time(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total sim.Time
	for _, l := range sorted {
		total += l
	}
	return Summary{
		Count: len(sorted),
		Mean:  total / sim.Time(len(sorted)),
		P50:   percentile(sorted, 0.50),
		P95:   percentile(sorted, 0.95),
		P99:   percentile(sorted, 0.99),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
	}
}

// percentile returns the nearest-rank percentile of pre-sorted samples.
func percentile(sorted []sim.Time, p float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted)) + 0.5)
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v", s.Count, s.Mean, s.P50, s.P99, s.Max)
}

// Deviation computes the paper's latency-deviation metric for one quota
// assignment (§6.2):
//
//	sum_j max(Tsys[j] - Tiso[j], 0)
//
// where Tsys[j] is application j's average latency under the system and
// Tiso[j] its isolated-quota target. Larger deviation means the system
// honours the quota assignment worse.
func Deviation(sys, iso []sim.Time) (sim.Time, error) {
	if len(sys) != len(iso) {
		return 0, fmt.Errorf("metrics: %d system latencies vs %d ISO targets", len(sys), len(iso))
	}
	var d sim.Time
	for j := range sys {
		if over := sys[j] - iso[j]; over > 0 {
			d += over
		}
	}
	return d, nil
}

// QoSViolationRate returns the fraction of samples exceeding the target.
func QoSViolationRate(lats []sim.Time, target sim.Time) float64 {
	if len(lats) == 0 || target <= 0 {
		return 0
	}
	n := 0
	for _, l := range lats {
		if l > target {
			n++
		}
	}
	return float64(n) / float64(len(lats))
}

// Throughput returns completed requests per second of virtual time.
func Throughput(completed int, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(completed) / (float64(elapsed) / float64(sim.Second))
}

// MeanOfMeans averages per-application mean latencies — the paper's "average
// latency of requests from different applications" headline metric, which
// weights applications equally regardless of request rate.
func MeanOfMeans(perApp [][]sim.Time) sim.Time {
	var total sim.Time
	n := 0
	for _, lats := range perApp {
		if len(lats) == 0 {
			continue
		}
		total += Summarize(lats).Mean
		n++
	}
	if n == 0 {
		return 0
	}
	return total / sim.Time(n)
}
