package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"bless/internal/sim"
)

func TestSummarizeBasics(t *testing.T) {
	lats := []sim.Time{5, 1, 3, 2, 4}
	s := Summarize(lats)
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min, s.Max)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v, want zero", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	lats := []sim.Time{5, 1, 3}
	Summarize(lats)
	if lats[0] != 5 || lats[1] != 1 || lats[2] != 3 {
		t.Errorf("input mutated: %v", lats)
	}
}

func TestPercentilesOrderedProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		lats := make([]sim.Time, len(raw))
		for i, r := range raw {
			lats[i] = sim.Time(r % 1_000_000)
		}
		s := Summarize(lats)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	// 100 samples 1..100: P99 should be 99 (nearest rank), P50 = 50.
	lats := make([]sim.Time, 100)
	for i := range lats {
		lats[i] = sim.Time(i + 1)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(lats), func(i, j int) { lats[i], lats[j] = lats[j], lats[i] })
	s := Summarize(lats)
	if s.P50 != 50 {
		t.Errorf("P50 = %v, want 50", s.P50)
	}
	if s.P99 != 99 {
		t.Errorf("P99 = %v, want 99", s.P99)
	}
}

func TestDeviation(t *testing.T) {
	sys := []sim.Time{10, 20, 30}
	iso := []sim.Time{15, 15, 15}
	d, err := Deviation(sys, iso)
	if err != nil {
		t.Fatal(err)
	}
	// max(10-15,0) + max(20-15,0) + max(30-15,0) = 0 + 5 + 15 = 20.
	if d != 20 {
		t.Errorf("Deviation = %v, want 20", d)
	}
}

func TestDeviationAllWithinISO(t *testing.T) {
	d, err := Deviation([]sim.Time{5, 10}, []sim.Time{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("Deviation = %v, want 0 when all latencies beat ISO", d)
	}
}

func TestDeviationLengthMismatch(t *testing.T) {
	if _, err := Deviation([]sim.Time{1}, []sim.Time{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestQoSViolationRate(t *testing.T) {
	lats := []sim.Time{5, 10, 15, 20}
	if v := QoSViolationRate(lats, 12); v != 0.5 {
		t.Errorf("violation rate = %g, want 0.5", v)
	}
	if v := QoSViolationRate(lats, 100); v != 0 {
		t.Errorf("violation rate = %g, want 0", v)
	}
	if v := QoSViolationRate(nil, 10); v != 0 {
		t.Errorf("empty violation rate = %g, want 0", v)
	}
	if v := QoSViolationRate(lats, 0); v != 0 {
		t.Errorf("zero-target violation rate = %g, want 0", v)
	}
}

func TestThroughput(t *testing.T) {
	if th := Throughput(100, sim.Second); th != 100 {
		t.Errorf("throughput = %g, want 100", th)
	}
	if th := Throughput(50, sim.Second/2); th != 100 {
		t.Errorf("throughput = %g, want 100", th)
	}
	if th := Throughput(10, 0); th != 0 {
		t.Errorf("zero-elapsed throughput = %g, want 0", th)
	}
}

func TestMeanOfMeans(t *testing.T) {
	perApp := [][]sim.Time{
		{10, 20},      // mean 15
		{5},           // mean 5
		{},            // skipped
		{100, 80, 60}, // mean 80
	}
	if m := MeanOfMeans(perApp); m != (15+5+80)/3 {
		t.Errorf("MeanOfMeans = %v, want %v", m, (15+5+80)/3)
	}
	if m := MeanOfMeans(nil); m != 0 {
		t.Errorf("empty MeanOfMeans = %v, want 0", m)
	}
}

// Property: Summarize's mean lies between min and max and matches a direct
// computation.
func TestMeanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		lats := make([]sim.Time, len(raw))
		var total sim.Time
		for i, r := range raw {
			lats[i] = sim.Time(r)
			total += sim.Time(r)
		}
		s := Summarize(lats)
		want := total / sim.Time(len(raw))
		sorted := append([]sim.Time(nil), lats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return s.Mean == want && s.Min == sorted[0] && s.Max == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]sim.Time{sim.Millisecond})
	if str := s.String(); str == "" {
		t.Error("empty String()")
	}
}
