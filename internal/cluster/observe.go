package cluster

import (
	"io"
	"sort"

	"bless/internal/obs"
	"bless/internal/sim"
	"bless/internal/timeline"
)

// Fleet observability: with Config.Observe set, Deploy instruments every
// device with its own bus, collector, registry and SLO tracker, all events
// stamped with the device name ("gpu0", "gpu1", ...). The per-device views
// merge into pool-wide ones — registries via obs.MergeSnapshots (lossless
// histogram merge), SLO attainment via obs.MergeSLO — which is what blessd's
// debug endpoints and the ROADMAP's fleet control plane read.

// deviceObs is one device's observability attachment.
type deviceObs struct {
	name string
	bus  *obs.Bus
	col  *obs.Collector
	reg  *obs.Registry
	slo  *obs.SLOTracker
}

// observe instruments a device before its runtime deploys. targets maps each
// local client to its SLO target for the online attainment tracker.
func (cl *Cluster) observe(d *device, name string, maxEvents int) {
	do := &deviceObs{
		name: name,
		bus:  obs.NewBus(),
		col:  obs.NewCollector(),
		reg:  obs.NewRegistry(),
		slo:  obs.NewSLOTracker(),
	}
	do.col.Device = name
	do.col.MaxEvents = maxEvents
	do.col.Recorder.LaneOf = func(q *sim.Queue) string {
		return name + "/" + obs.ClientLane(q)
	}
	targets := make(map[string]sim.Time, len(d.env.Clients))
	for _, c := range d.env.Clients {
		targets[c.App.Name] = c.SLOTarget
		do.slo.SetTarget(c.App.Name, c.SLOTarget)
	}
	do.bus.Subscribe(do.col)
	do.bus.Subscribe(obs.SubscriberFunc(func(ev obs.Event) {
		switch ev.Kind {
		case obs.KindRequestAdmitted:
			do.reg.Counter("requests/admitted_total").Inc()
		case obs.KindRequestDone:
			if ev.Reason == "failed" {
				do.reg.Counter("requests/failed_total").Inc()
			} else {
				do.reg.Counter("requests/completed_total").Inc()
				do.reg.Histogram("latency/request_ns").Observe(ev.Actual)
			}
			do.slo.Observe(ev.Client, targets[ev.Client], ev.Actual, ev.Reason == "failed")
		case obs.KindSquadFormed:
			do.reg.Counter("squads/formed_total").Inc()
		case obs.KindKernelFault:
			do.reg.Counter("faults/kernel_total").Inc()
		case obs.KindKernelRetry:
			do.reg.Counter("faults/retry_total").Inc()
		case obs.KindRequestAbort:
			do.reg.Counter("faults/abort_total").Inc()
		}
	}))
	d.gpu.AddTracer(do.col.Recorder)
	d.rt.Observe(do.bus)
	d.obs = do
}

// Observed reports whether the cluster was deployed with Config.Observe.
func (cl *Cluster) Observed() bool {
	return len(cl.devices) > 0 && cl.devices[0].obs != nil
}

// Events returns every device's collected decision events merged into one
// stream, ordered by (At, Device) — the input obs.Lifecycles expects for a
// whole-cluster reconstruction. Nil when unobserved.
func (cl *Cluster) Events() []obs.Event {
	if !cl.Observed() {
		return nil
	}
	var out []obs.Event
	for _, d := range cl.devices {
		out = append(out, d.obs.col.Events...)
	}
	// Each device's stream is time-ordered; a stable sort by At preserves
	// per-device publication order and breaks cross-device ties by device
	// deterministically (devices are appended in index order).
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// DeviceSnapshot is one device's registry view.
type DeviceSnapshot struct {
	Device   string
	Snapshot obs.Snapshot
}

// DeviceSnapshots returns each device's registry snapshot, self-metrics
// (events emitted/dropped, tracing wall time) included. Nil when unobserved.
func (cl *Cluster) DeviceSnapshots() []DeviceSnapshot {
	if !cl.Observed() {
		return nil
	}
	out := make([]DeviceSnapshot, len(cl.devices))
	for i, d := range cl.devices {
		cost := d.obs.bus.Cost()
		d.obs.reg.Counter("obs/events_total").Add(cost.Events - d.obs.reg.Counter("obs/events_total").Value())
		d.obs.reg.Counter("obs/publish_wall_ns").Add(cost.WallNS - d.obs.reg.Counter("obs/publish_wall_ns").Value())
		d.obs.reg.Counter("obs/events_dropped_total").Add(d.obs.col.Dropped() - d.obs.reg.Counter("obs/events_dropped_total").Value())
		out[i] = DeviceSnapshot{Device: d.obs.name, Snapshot: d.obs.reg.Snapshot()}
	}
	return out
}

// FleetSnapshot merges every device's registry into the pool-wide view:
// counters sum, histograms merge losslessly. Zero when unobserved.
func (cl *Cluster) FleetSnapshot() obs.Snapshot {
	snaps := cl.DeviceSnapshots()
	parts := make([]obs.Snapshot, len(snaps))
	for i, s := range snaps {
		parts[i] = s.Snapshot
	}
	return obs.MergeSnapshots(parts...)
}

// FleetSLOTracker merges every device's SLO tracker into one pool-wide
// tracker (losslessly — callers can fold it further, e.g. across plans).
// Empty when unobserved.
func (cl *Cluster) FleetSLOTracker() *obs.SLOTracker {
	if !cl.Observed() {
		return obs.NewSLOTracker()
	}
	trackers := make([]*obs.SLOTracker, len(cl.devices))
	for i, d := range cl.devices {
		trackers[i] = d.obs.slo
	}
	return obs.MergeSLO(trackers...)
}

// FleetSLO merges every device's SLO tracker into pool-wide per-tenant
// attainment. Empty when unobserved.
func (cl *Cluster) FleetSLO() obs.SLOSnapshot {
	return cl.FleetSLOTracker().Snapshot()
}

// DeviceSLO returns one device's SLO attainment view. Empty when unobserved
// or out of range.
func (cl *Cluster) DeviceSLO(device int) obs.SLOSnapshot {
	if !cl.Observed() || device < 0 || device >= len(cl.devices) {
		return obs.SLOSnapshot{}
	}
	return cl.devices[device].obs.slo.Snapshot()
}

// DroppedEvents sums the bounded collectors' overflow counters.
func (cl *Cluster) DroppedEvents() int64 {
	if !cl.Observed() {
		return 0
	}
	var n int64
	for _, d := range cl.devices {
		n += d.obs.col.Dropped()
	}
	return n
}

// WriteChromeTrace exports the whole cluster as one Chrome trace: kernel
// spans on device-prefixed client lanes ("gpu0/resnet50"), decision events
// on per-device scheduler lanes. Writes an empty trace when unobserved.
func (cl *Cluster) WriteChromeTrace(w io.Writer) error {
	var spans []timeline.Span
	if cl.Observed() {
		for _, d := range cl.devices {
			spans = append(spans, d.obs.col.Recorder.Spans...)
		}
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	}
	return obs.WriteChromeTrace(w, spans, cl.Events())
}
