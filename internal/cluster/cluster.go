// Package cluster extends BLESS across a pool of GPUs (§4.2.2): the runtime
// components (scheduler, determiner, kernel manager) are replicated per
// device, and a central controller places applications onto devices using
// the offline profiles' memory requirements and kernel statistics, then
// routes each request to its application's host GPU.
//
// All devices share one simulation engine, so a cluster run remains a single
// deterministic virtual-time simulation.
package cluster

import (
	"fmt"

	"bless/internal/core"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// Config assembles a cluster.
type Config struct {
	// GPUs is the device count (identical devices).
	GPUs int
	// GPU is the per-device configuration (zero = DefaultConfig).
	GPU sim.Config
	// Runtime tunes the per-device BLESS runtimes.
	Runtime core.Options
	// Observe attaches per-device observability (bus, collector, registry,
	// SLO tracker, device-stamped events) so the fleet views — FleetSnapshot,
	// FleetSLO, Events, WriteChromeTrace — are available after the run.
	Observe bool
	// MaxEventsPerDevice bounds each device's event collector when Observe
	// is set (0 = unbounded); overflow is counted, never silent.
	MaxEventsPerDevice int
}

// Cluster is a deployed multi-GPU BLESS installation.
type Cluster struct {
	eng      *sim.Engine
	devices  []*device
	appHost  []int // app index -> device index
	appLocal []int // app index -> client ID on its device
}

type device struct {
	gpu   *sim.GPU
	env   *sharing.Env
	rt    *core.Runtime
	appOf []int      // device-local client ID -> cluster app index
	obs   *deviceObs // nil unless Config.Observe
}

// Deploy places the applications across the pool with the §4.2.2 controller
// and deploys a BLESS runtime per device. The returned cluster shares the
// given engine; pass a fresh one per simulation.
func Deploy(eng *sim.Engine, clients []*sharing.Client, cfg Config) (*Cluster, error) {
	if eng == nil {
		return nil, fmt.Errorf("cluster: nil engine")
	}
	if cfg.GPUs < 1 {
		return nil, fmt.Errorf("cluster: need at least one GPU")
	}
	gpuCfg := cfg.GPU
	if gpuCfg.SMs == 0 {
		gpuCfg = sim.DefaultConfig()
	}

	// Central placement.
	pas := make([]core.PlacementApp, len(clients))
	for i, c := range clients {
		if c.Profile == nil {
			return nil, fmt.Errorf("cluster: client %d has no profile", i)
		}
		pas[i] = core.PlacementApp{Name: c.App.Name, Profile: c.Profile, Quota: c.Quota}
	}
	gpus := make([]core.PlacementGPU, cfg.GPUs)
	for i := range gpus {
		gpus[i] = core.PlacementGPU{ID: fmt.Sprintf("gpu%d", i), Config: gpuCfg}
	}
	placement, err := core.Place(pas, gpus, core.PlacementOptions{})
	if err != nil {
		return nil, err
	}

	cl := &Cluster{
		eng:      eng,
		devices:  make([]*device, cfg.GPUs),
		appHost:  make([]int, len(clients)),
		appLocal: make([]int, len(clients)),
	}

	// Group clients per device, re-numbering IDs locally (sharing requires
	// dense per-deployment IDs).
	perGPU := make([][]int, cfg.GPUs)
	for ai, gi := range placement {
		cl.appHost[ai] = gi
		cl.appLocal[ai] = len(perGPU[gi])
		perGPU[gi] = append(perGPU[gi], ai)
	}

	for gi := 0; gi < cfg.GPUs; gi++ {
		gpu := sim.NewGPU(eng, gpuCfg)
		locals := make([]*sharing.Client, len(perGPU[gi]))
		for li, ai := range perGPU[gi] {
			src := clients[ai]
			locals[li] = &sharing.Client{
				ID:        li,
				App:       src.App,
				Profile:   src.Profile,
				Quota:     src.Quota,
				SLOTarget: src.SLOTarget,
			}
		}
		env := &sharing.Env{Eng: eng, GPU: gpu, Clients: locals}
		rt := core.New(cfg.Runtime)
		d := &device{gpu: gpu, env: env, rt: rt, appOf: perGPU[gi]}
		if cfg.Observe {
			// Instrument before Deploy so deployment-time decisions are
			// captured too.
			cl.observe(d, fmt.Sprintf("gpu%d", gi), cfg.MaxEventsPerDevice)
		}
		if len(locals) > 0 {
			if err := rt.Deploy(env); err != nil {
				return nil, fmt.Errorf("cluster: gpu%d: %w", gi, err)
			}
		}
		cl.devices[gi] = d
	}
	return cl, nil
}

// Host returns the device index hosting the application.
func (cl *Cluster) Host(app int) int { return cl.appHost[app] }

// Devices returns the device count.
func (cl *Cluster) Devices() int { return len(cl.devices) }

// OnComplete registers the completion observer for every device; app is the
// cluster-level application index.
func (cl *Cluster) OnComplete(fn func(app int, r *sharing.Request)) {
	for _, d := range cl.devices {
		d := d
		d.env.OnComplete = func(r *sharing.Request) {
			fn(d.appOf[r.Client.ID], r)
		}
	}
}

// Submit routes one request for the application to its host device at the
// current virtual time, returning the request handle.
func (cl *Cluster) Submit(app, seq int) (*sharing.Request, error) {
	if app < 0 || app >= len(cl.appHost) {
		return nil, fmt.Errorf("cluster: app index %d out of range", app)
	}
	d := cl.devices[cl.appHost[app]]
	local := d.env.Clients[cl.appLocal[app]]
	r := &sharing.Request{Client: local, Seq: seq, Arrival: cl.eng.Now()}
	d.rt.Submit(r)
	return r, nil
}

// Utilization returns each device's average SM utilization.
func (cl *Cluster) Utilization() []float64 {
	out := make([]float64, len(cl.devices))
	for i, d := range cl.devices {
		out[i] = d.gpu.Utilization()
	}
	return out
}

// Quiescent reports whether every device has drained.
func (cl *Cluster) Quiescent() bool {
	for _, d := range cl.devices {
		if !d.gpu.Quiescent() {
			return false
		}
	}
	return true
}
