package cluster

import (
	"bytes"
	"testing"

	"bless/internal/metrics"
	"bless/internal/obs"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// runObservedCluster deploys an observed 3-device cluster with six apps,
// runs several requests per app, and returns the cluster plus per-app
// completed requests.
func runObservedCluster(t *testing.T, reqsPerApp int) (*Cluster, [][]*sharing.Request) {
	t.Helper()
	eng := sim.NewEngine()
	// The duplicate vgg11 deployments carry 0.6 quotas so placement cannot
	// co-locate them: request identity within a device is (client name,
	// seq), so same-name deployments must sit on distinct devices to stay
	// distinguishable in the event stream.
	clients := clusterClients(t,
		spec("vgg11", 0.6), spec("resnet50", 0.6),
		spec("vgg11", 0.6), spec("bert", 0.3),
		spec("resnet101", 0.3), spec("nasnet", 0.3),
	)
	// Per-deployment SLO targets so attainment is exercised.
	for _, c := range clients {
		c.SLOTarget = c.Profile.Iso[c.Profile.QuotaPartition(c.Quota)] * 2
	}
	cl, err := Deploy(eng, clients, Config{GPUs: 3, Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Devices() != 3 {
		t.Fatalf("Devices = %d, want 3", cl.Devices())
	}
	reqs := make([][]*sharing.Request, len(clients))
	for ai := range clients {
		ai := ai
		for s := 0; s < reqsPerApp; s++ {
			s := s
			eng.Schedule(sim.Time(s)*2*sim.Millisecond, func() {
				r, err := cl.Submit(ai, s)
				if err != nil {
					t.Errorf("submit %d/%d: %v", ai, s, err)
					return
				}
				reqs[ai] = append(reqs[ai], r)
			})
		}
	}
	eng.Run()
	return cl, reqs
}

func TestClusterObservedLifecycles(t *testing.T) {
	cl, reqs := runObservedCluster(t, 2)

	events := cl.Events()
	if len(events) == 0 {
		t.Fatal("no events collected")
	}
	// Every event is device-stamped.
	for _, ev := range events {
		if ev.Device == "" {
			t.Fatalf("unstamped event: %+v", ev)
		}
	}

	// Every submitted request reconstructs into a complete lifecycle on its
	// host device.
	ls := obs.Lifecycles(events)
	var total int
	for ai, rs := range reqs {
		dev := cl.devices[cl.Host(ai)].obs.name
		for _, r := range rs {
			total++
			l := obs.FindLifecycle(ls, dev, r.Client.App.Name, r.Seq)
			if l == nil {
				t.Fatalf("no lifecycle for %s/%s/%d", dev, r.Client.App.Name, r.Seq)
			}
			if !l.Completed {
				t.Errorf("%s/%s/%d not completed", dev, r.Client.App.Name, r.Seq)
			}
			if l.Latency != r.Latency() {
				t.Errorf("%s/%s/%d lifecycle latency %v != request latency %v",
					dev, r.Client.App.Name, r.Seq, l.Latency, r.Latency())
			}
		}
	}
	if len(ls) != total {
		t.Errorf("lifecycles = %d, want %d", len(ls), total)
	}

	// The merged trace exports with device-prefixed lanes.
	var buf bytes.Buffer
	if err := cl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"gpu0/`)) {
		t.Error("chrome trace lacks device-prefixed lanes")
	}
}

// TestClusterFleetMergeLossless is the ≥3-device property test: the
// fleet-merged histogram must match, bucket for bucket and quantile for
// quantile, a single digest fed the combined per-device completion streams.
func TestClusterFleetMergeLossless(t *testing.T) {
	cl, reqs := runObservedCluster(t, 3)

	var whole metrics.Digest
	var completed int64
	for _, rs := range reqs {
		for _, r := range rs {
			if r.Done > 0 && !r.Failed {
				whole.Observe(r.Latency())
				completed++
			}
		}
	}
	if completed == 0 {
		t.Fatal("no completions")
	}

	fleet := cl.FleetSnapshot()
	if got := fleet.Counters["requests/completed_total"]; got != completed {
		t.Fatalf("fleet completed = %d, want %d", got, completed)
	}
	h := fleet.Histograms["latency/request_ns"]
	if h.Count != whole.Count || h.SumNS != int64(whole.Sum) ||
		h.MinNS != int64(whole.Min) || h.MaxNS != int64(whole.Max) {
		t.Errorf("fleet histogram envelope %+v, want digest %v", h, whole.String())
	}
	if h.P50NS != int64(whole.Quantile(0.50)) ||
		h.P95NS != int64(whole.Quantile(0.95)) ||
		h.P99NS != int64(whole.Quantile(0.99)) {
		t.Errorf("fleet quantiles %d/%d/%d diverge from combined-stream digest %d/%d/%d",
			h.P50NS, h.P95NS, h.P99NS,
			int64(whole.Quantile(0.50)), int64(whole.Quantile(0.95)), int64(whole.Quantile(0.99)))
	}
	for i, n := range h.Bucket {
		if whole.Buckets[i] != n {
			t.Errorf("bucket[%d] = %d, want %d", i, n, whole.Buckets[i])
		}
	}

	// Fleet SLO folds both deployments of each app into one tenant.
	slo := cl.FleetSLO()
	byName := map[string]obs.TenantSLO{}
	for _, ts := range slo.Tenants {
		byName[ts.Tenant] = ts
	}
	if len(byName) != 5 { // vgg11, resnet50, bert, resnet101, nasnet
		t.Fatalf("fleet tenants = %d, want 5: %+v", len(byName), slo.Tenants)
	}
	if vg := byName["vgg11"]; vg.Completed != 6 { // two deployments x 3 reqs
		t.Errorf("vgg11 fleet completed = %d, want 6", vg.Completed)
	}
	var sumCompleted int64
	for _, ts := range slo.Tenants {
		sumCompleted += ts.Completed
		if ts.Targeted != ts.Completed+ts.Failed {
			t.Errorf("%s targeted %d != completed+failed %d", ts.Tenant, ts.Targeted, ts.Completed+ts.Failed)
		}
	}
	if sumCompleted != completed {
		t.Errorf("fleet SLO completions = %d, want %d", sumCompleted, completed)
	}

	if cl.DroppedEvents() != 0 {
		t.Errorf("unbounded collectors dropped %d events", cl.DroppedEvents())
	}
	if fleet.Counters["obs/events_total"] == 0 {
		t.Error("bus self-accounting missing from fleet snapshot")
	}
}

func TestClusterObserveOffIsInert(t *testing.T) {
	eng := sim.NewEngine()
	clients := clusterClients(t, spec("vgg11", 0.8))
	cl, err := Deploy(eng, clients, Config{GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Observed() {
		t.Fatal("unobserved cluster reports observed")
	}
	if cl.Events() != nil || cl.DeviceSnapshots() != nil {
		t.Error("unobserved cluster returned observability data")
	}
	if got := cl.FleetSLO(); len(got.Tenants) != 0 {
		t.Errorf("unobserved FleetSLO = %+v", got)
	}
}

func TestClusterBoundedCollectorsCountDrops(t *testing.T) {
	eng := sim.NewEngine()
	clients := clusterClients(t, spec("vgg11", 0.6), spec("resnet50", 0.4))
	cl, err := Deploy(eng, clients, Config{GPUs: 1, Observe: true, MaxEventsPerDevice: 4})
	if err != nil {
		t.Fatal(err)
	}
	for ai := range clients {
		ai := ai
		eng.Schedule(0, func() {
			if _, err := cl.Submit(ai, 0); err != nil {
				t.Error(err)
			}
		})
	}
	eng.Run()
	if len(cl.Events()) != 4 {
		t.Fatalf("bounded collector kept %d events, want 4", len(cl.Events()))
	}
	if cl.DroppedEvents() == 0 {
		t.Fatal("overflow not counted")
	}
	snap := cl.FleetSnapshot()
	if snap.Counters["obs/events_dropped_total"] != cl.DroppedEvents() {
		t.Errorf("registry drop counter %d != collector %d",
			snap.Counters["obs/events_dropped_total"], cl.DroppedEvents())
	}
}
