package cluster

import (
	"testing"

	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sharing"
	"bless/internal/sim"
)

func clusterClients(t *testing.T, specs ...struct {
	name  string
	quota float64
}) []*sharing.Client {
	t.Helper()
	out := make([]*sharing.Client, len(specs))
	for i, s := range specs {
		app := model.MustGet(s.name)
		p, err := profiler.ProfileApp(app, profiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = &sharing.Client{ID: i, App: app, Profile: p, Quota: s.quota}
	}
	return out
}

func spec(name string, quota float64) struct {
	name  string
	quota float64
} {
	return struct {
		name  string
		quota float64
	}{name, quota}
}

func TestClusterDeployAndRun(t *testing.T) {
	eng := sim.NewEngine()
	clients := clusterClients(t,
		spec("vgg11", 0.6), spec("resnet50", 0.6),
		spec("bert", 0.4), spec("resnet101", 0.4),
	)
	cl, err := Deploy(eng, clients, Config{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Devices() != 2 {
		t.Fatalf("Devices = %d, want 2", cl.Devices())
	}
	// Quota sums per device must hold.
	sums := map[int]float64{}
	for ai := range clients {
		sums[cl.Host(ai)] += clients[ai].Quota
	}
	for gi, s := range sums {
		if s > 1.0001 {
			t.Errorf("gpu %d oversubscribed: %.2f", gi, s)
		}
	}

	done := map[int]int{}
	cl.OnComplete(func(app int, r *sharing.Request) { done[app]++ })
	for ai := range clients {
		ai := ai
		eng.Schedule(0, func() {
			if _, err := cl.Submit(ai, 0); err != nil {
				t.Errorf("submit %d: %v", ai, err)
			}
		})
	}
	eng.Run()
	for ai := range clients {
		if done[ai] != 1 {
			t.Errorf("app %d completed %d requests, want 1", ai, done[ai])
		}
	}
	if !cl.Quiescent() {
		t.Error("cluster not quiescent after drain")
	}
	for gi, u := range cl.Utilization() {
		if u <= 0 || u > 1 {
			t.Errorf("gpu %d utilization %g out of range", gi, u)
		}
	}
}

func TestClusterIsolatesDevices(t *testing.T) {
	// Two apps forced onto separate devices by quota must not affect each
	// other: latency equals solo full-GPU speed despite simultaneous load.
	eng := sim.NewEngine()
	clients := clusterClients(t, spec("resnet50", 0.9), spec("resnet50", 0.9))
	cl, err := Deploy(eng, clients, Config{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Host(0) == cl.Host(1) {
		t.Fatal("0.9-quota apps placed on one device")
	}
	var reqs [2]*sharing.Request
	for ai := 0; ai < 2; ai++ {
		ai := ai
		eng.Schedule(0, func() {
			r, err := cl.Submit(ai, 0)
			if err != nil {
				t.Error(err)
			}
			reqs[ai] = r
		})
	}
	eng.Run()
	solo := clients[0].Profile.Iso[clients[0].Profile.Partitions-1]
	for ai, r := range reqs {
		if r.Done == 0 {
			t.Fatalf("app %d incomplete", ai)
		}
		if lat := r.Latency(); lat > solo+solo/10 {
			t.Errorf("app %d latency %v, want near solo %v (device isolation)", ai, lat, solo)
		}
	}
}

func TestClusterErrors(t *testing.T) {
	eng := sim.NewEngine()
	clients := clusterClients(t, spec("vgg11", 0.5))
	if _, err := Deploy(nil, clients, Config{GPUs: 1}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := Deploy(eng, clients, Config{}); err == nil {
		t.Error("zero GPUs accepted")
	}
	bad := []*sharing.Client{{ID: 0, App: model.MustGet("vgg11"), Quota: 0.5}}
	if _, err := Deploy(eng, bad, Config{GPUs: 1}); err == nil {
		t.Error("profile-less client accepted")
	}
	// Infeasible placement: two 0.9 quotas, one device.
	cl2 := clusterClients(t, spec("vgg11", 0.9), spec("resnet50", 0.9))
	if _, err := Deploy(eng, cl2, Config{GPUs: 1}); err == nil {
		t.Error("infeasible placement accepted")
	}
	// Submit bounds.
	cl, err := Deploy(eng, clients, Config{GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(5, 0); err == nil {
		t.Error("out-of-range app accepted")
	}
}

func TestClusterSharesVirtualTime(t *testing.T) {
	// Devices share one engine: staggered submissions across devices see a
	// consistent global clock.
	eng := sim.NewEngine()
	clients := clusterClients(t, spec("vgg11", 0.8), spec("resnet50", 0.8))
	cl, err := Deploy(eng, clients, Config{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var r0, r1 *sharing.Request
	eng.Schedule(0, func() { r0, _ = cl.Submit(0, 0) })
	eng.Schedule(5*sim.Millisecond, func() { r1, _ = cl.Submit(1, 0) })
	eng.Run()
	if r1.Arrival != 5*sim.Millisecond {
		t.Errorf("second request arrival %v, want 5ms", r1.Arrival)
	}
	if r0.Done == 0 || r1.Done == 0 {
		t.Error("requests incomplete")
	}
}
