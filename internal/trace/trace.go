// Package trace generates the request arrival processes of Table 2: the
// closed-loop high/medium/low loads (A/B/C), synthetic equivalents of the
// real-world Twitter and Azure-function traces (D), and the extremely biased
// load (E). All generators are seeded and deterministic.
//
// Substitution note: the paper replays the archived Twitter stream trace and
// the Azure serverless function trace. Those datasets are unavailable
// offline; the generators here reproduce the properties the paper relies on —
// Twitter: steady medium-rate arrivals with diurnal modulation; Azure: sparse
// bursty invocations with long idle gaps (the "abundant bubbles" of §6.3).
package trace

import (
	"math"
	"math/rand"

	"bless/internal/sim"
)

// Pattern describes one client's arrival process. Exactly one of the two
// modes is active: closed-loop (Think/Limit set, Arrivals nil) issues the
// next request a think-time after the previous completion; open-loop replays
// the precomputed Arrivals schedule.
type Pattern struct {
	// Think is the closed-loop think time between a completion and the next
	// submission.
	Think sim.Time
	// Limit caps closed-loop requests (0 = until the horizon).
	Limit int
	// Arrivals is the open-loop arrival schedule, ascending.
	Arrivals []sim.Time
}

// ClosedLoop reports whether the pattern is completion-driven.
func (p *Pattern) ClosedLoop() bool { return p.Arrivals == nil }

// Closed returns a closed-loop pattern: the next request is issued think
// after the previous one completes; at most limit requests (0 = unbounded,
// the harness stops issuing at its horizon).
//
// The paper's workloads A/B/C set think to 1/3, 2/3 and 1x the model's
// solo-run latency.
func Closed(think sim.Time, limit int) Pattern {
	return Pattern{Think: think, Limit: limit}
}

// Poisson returns an open-loop pattern with exponentially distributed
// inter-arrival gaps at the given rate (requests per second) up to horizon.
func Poisson(ratePerSec float64, horizon sim.Time, seed int64) Pattern {
	rng := rand.New(rand.NewSource(seed))
	var arr []sim.Time
	t := sim.Time(0)
	for {
		gap := sim.Time(rng.ExpFloat64() / ratePerSec * float64(sim.Second))
		if gap < 1 {
			gap = 1
		}
		t += gap
		if t > horizon {
			break
		}
		arr = append(arr, t)
	}
	return Pattern{Arrivals: arr}
}

// Twitter returns a synthetic Twitter-trace-shaped pattern: Poisson arrivals
// whose rate follows a diurnal sinusoid (one full day compressed into the
// horizon), oscillating +-50% around meanRatePerSec. The paper describes the
// Twitter trace as a dense tenancy workload with few spare bubbles (§6.3).
func Twitter(meanRatePerSec float64, horizon sim.Time, seed int64) Pattern {
	rng := rand.New(rand.NewSource(seed))
	var arr []sim.Time
	t := sim.Time(0)
	for {
		phase := 2 * math.Pi * float64(t) / float64(horizon)
		rate := meanRatePerSec * (1 + 0.5*math.Sin(phase))
		if rate < meanRatePerSec*0.1 {
			rate = meanRatePerSec * 0.1
		}
		gap := sim.Time(rng.ExpFloat64() / rate * float64(sim.Second))
		if gap < 1 {
			gap = 1
		}
		t += gap
		if t > horizon {
			break
		}
		arr = append(arr, t)
	}
	return Pattern{Arrivals: arr}
}

// Azure returns a synthetic Azure-functions-shaped pattern: short bursts
// (geometric size, mean burstLen) separated by long exponential idle gaps
// (mean idleGap). Overall load is low, leaving the abundant GPU bubbles the
// paper credits for BLESS's largest gains (§6.3).
func Azure(burstLen float64, inBurstGap, idleGap, horizon sim.Time, seed int64) Pattern {
	rng := rand.New(rand.NewSource(seed))
	var arr []sim.Time
	t := sim.Time(0)
	for {
		// Idle gap before the burst.
		t += sim.Time(rng.ExpFloat64() * float64(idleGap))
		if t > horizon {
			break
		}
		n := 1
		for rng.Float64() < 1-1/burstLen {
			n++
		}
		for i := 0; i < n && t <= horizon; i++ {
			arr = append(arr, t)
			t += sim.Time(rng.ExpFloat64() * float64(inBurstGap))
		}
		if t > horizon {
			break
		}
	}
	return Pattern{Arrivals: arr}
}

// Burst returns an open-loop pattern of n simultaneous arrivals at time at.
func Burst(n int, at sim.Time) Pattern {
	arr := make([]sim.Time, n)
	for i := range arr {
		arr[i] = at
	}
	return Pattern{Arrivals: arr}
}

// Periodic returns an open-loop pattern with fixed inter-arrival period
// starting at offset, up to horizon.
func Periodic(period, offset, horizon sim.Time) Pattern {
	var arr []sim.Time
	for t := offset; t <= horizon; t += period {
		arr = append(arr, t)
	}
	return Pattern{Arrivals: arr}
}
