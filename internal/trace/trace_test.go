package trace

import (
	"testing"
	"testing/quick"

	"bless/internal/sim"
)

func TestClosedPattern(t *testing.T) {
	p := Closed(5*sim.Millisecond, 10)
	if !p.ClosedLoop() {
		t.Error("Closed pattern not closed-loop")
	}
	if p.Think != 5*sim.Millisecond || p.Limit != 10 {
		t.Errorf("pattern = %+v", p)
	}
}

func TestPoissonDeterministicAndBounded(t *testing.T) {
	h := sim.Second
	p1 := Poisson(100, h, 7)
	p2 := Poisson(100, h, 7)
	if len(p1.Arrivals) != len(p2.Arrivals) {
		t.Fatal("Poisson not deterministic for equal seeds")
	}
	for i := range p1.Arrivals {
		if p1.Arrivals[i] != p2.Arrivals[i] {
			t.Fatal("Poisson not deterministic for equal seeds")
		}
	}
	if p := Poisson(100, h, 8); len(p.Arrivals) == len(p1.Arrivals) {
		same := true
		for i := range p.Arrivals {
			if p.Arrivals[i] != p1.Arrivals[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical arrivals")
		}
	}
	// Rate sanity: 100/s over 1s -> roughly 100 arrivals.
	if n := len(p1.Arrivals); n < 60 || n > 150 {
		t.Errorf("Poisson(100/s, 1s) produced %d arrivals", n)
	}
}

func TestArrivalsSortedWithinHorizonProperty(t *testing.T) {
	f := func(seed int64, rateRaw uint8) bool {
		rate := float64(rateRaw%50) + 1
		h := 500 * sim.Millisecond
		for _, p := range []Pattern{
			Poisson(rate, h, seed),
			Twitter(rate, h, seed),
			Azure(3, sim.Millisecond, 20*sim.Millisecond, h, seed),
		} {
			if p.ClosedLoop() {
				continue
			}
			var prev sim.Time
			for _, at := range p.Arrivals {
				if at < prev || at > h {
					return false
				}
				prev = at
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTwitterModulation(t *testing.T) {
	// The diurnal sinusoid concentrates arrivals unevenly: the densest
	// quarter of the horizon should hold meaningfully more than 25%.
	h := 2 * sim.Second
	p := Twitter(200, h, 3)
	quarters := make([]int, 4)
	for _, at := range p.Arrivals {
		q := int(at * 4 / (h + 1))
		quarters[q]++
	}
	max := 0
	for _, q := range quarters {
		if q > max {
			max = q
		}
	}
	if float64(max) < float64(len(p.Arrivals))*0.3 {
		t.Errorf("densest quarter holds %d of %d arrivals; want > 30%% (diurnal shape)", max, len(p.Arrivals))
	}
}

func TestAzureBurstiness(t *testing.T) {
	// Azure-shaped arrivals cluster: the mean gap should be much larger
	// than the median gap (long idles between tight bursts).
	p := Azure(4, sim.Millisecond, 100*sim.Millisecond, 4*sim.Second, 9)
	if len(p.Arrivals) < 10 {
		t.Fatalf("only %d arrivals generated", len(p.Arrivals))
	}
	gaps := make([]sim.Time, 0, len(p.Arrivals)-1)
	var total sim.Time
	for i := 1; i < len(p.Arrivals); i++ {
		g := p.Arrivals[i] - p.Arrivals[i-1]
		gaps = append(gaps, g)
		total += g
	}
	mean := total / sim.Time(len(gaps))
	// Median.
	lo := 0
	for _, g := range gaps {
		if g < mean/4 {
			lo++
		}
	}
	if float64(lo) < float64(len(gaps))*0.4 {
		t.Errorf("only %d/%d gaps are short (bursty shape missing)", lo, len(gaps))
	}
}

func TestBurst(t *testing.T) {
	p := Burst(3, 5*sim.Millisecond)
	if len(p.Arrivals) != 3 {
		t.Fatalf("%d arrivals, want 3", len(p.Arrivals))
	}
	for _, at := range p.Arrivals {
		if at != 5*sim.Millisecond {
			t.Errorf("arrival at %v, want 5ms", at)
		}
	}
	if p.ClosedLoop() {
		t.Error("Burst reported closed-loop")
	}
}

func TestPeriodic(t *testing.T) {
	p := Periodic(10*sim.Millisecond, 5*sim.Millisecond, 50*sim.Millisecond)
	want := []sim.Time{5, 15, 25, 35, 45}
	if len(p.Arrivals) != len(want) {
		t.Fatalf("%d arrivals, want %d", len(p.Arrivals), len(want))
	}
	for i, at := range p.Arrivals {
		if at != want[i]*sim.Millisecond {
			t.Errorf("arrival %d at %v, want %v", i, at, want[i]*sim.Millisecond)
		}
	}
}
